//! `swt-ckpt-server`: a networked, multi-tenant selective tensor store.
//!
//! The paper's core result is that weight transfer needs only a small
//! subset of a provider checkpoint's tensors (the LP/LCS overlap, ~2% of
//! payload bytes). On disk that subset is served by `DirStore`'s
//! seek-and-read path; this crate extends the same economics across the
//! network, so coordinator, workers and storage can live on different
//! hosts and many concurrent NAS runs can share one long-lived store:
//!
//! * [`CkptServer`] — the service: per-bucket `CachedStore<DirStore>`
//!   slices (byte-budgeted RAM over a durable WTC2 spill directory),
//!   thread-per-connection framed TCP, `ckptsrv.*` counters and an
//!   optional live `/status` endpoint.
//! * [`RemoteStore`] — the client: a `CheckpointStore` whose selective
//!   reads (`load_index`, `load_tensors`) translate to `GetIndex` /
//!   `GetTensors` frames, moving only the transfer subset over the wire,
//!   with retry-and-backoff riding out server restarts.
//! * [`proto`] — the store frame family (tags 0x41..), chunked streaming
//!   for multi-megabyte containers, and total, panic-free decoding.
//! * [`auth`] — shared-secret HMAC-SHA256 session authentication with a
//!   constant-time verifier.
//!
//! Multi-tenancy is by *bucket*: each `NasConfig.namespace` maps to one
//! bucket, one directory under the spill root, one LRU slice — tenants
//! cannot observe each other's ids. Consistency is per-id last-write-wins
//! with write-through durability: a `Put` is acked only after the container
//! bytes are renamed into the spill directory, so an acked checkpoint
//! survives a server crash and a restarted server serves it from disk.

pub mod auth;
pub mod client;
pub mod proto;
pub mod server;

pub use client::RemoteStore;
pub use proto::{StoreMsg, STORE_PROTOCOL_VERSION};
pub use server::{CkptServer, ServerConfig};
