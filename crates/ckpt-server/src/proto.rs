//! Store wire protocol: the frame family spoken between [`crate::RemoteStore`]
//! and the checkpoint server.
//!
//! Built on the shared `swt-wire` framing (`[u32 len LE][u8 type][payload]`,
//! 1 MiB cap). Checkpoints run to tens of megabytes — far past the frame
//! cap — so bulk payloads stream as a header frame declaring the total
//! length followed by [`StoreMsg::Chunk`] frames whose bytes must sum to
//! exactly that total. Tags live in the 0x41.. range so a store frame
//! arriving on a dist connection (or vice versa) is an immediate
//! `UnknownType`, never a silent misparse.
//!
//! The selective read path is `GetTensors` → [`StoreMsg::Ranges`]: the
//! response carries an interned name table plus per-tensor rows (shape,
//! checksum, payload length) and streams only the requested payload bytes,
//! concatenated in row order. Everything else about the checkpoint — the
//! unmatched ~98% of payload bytes — never crosses the network, which is
//! the whole point of the subsystem.
//!
//! Like the dist wire, every decoder is total: any byte sequence yields
//! either a message or a typed [`WireError`], never a panic.

use swt_wire::{put_string, Cursor, WireError};

/// Store protocol version, exchanged in `Hello`/`HelloAck`. Independent of
/// the dist protocol version: the two wires evolve separately.
pub const STORE_PROTOCOL_VERSION: u32 = 1;

/// Bytes per streamed [`StoreMsg::Chunk`] — comfortably under the 1 MiB
/// frame cap while keeping per-frame overhead negligible.
pub const CHUNK_LEN: usize = 256 * 1024;

/// Most names one `GetTensors` may request, and most rows/names one
/// `Ranges` may carry (mirrors the checkpoint format's own TOC cap).
pub const MAX_GET_NAMES: usize = 4096;

/// Upper bound on any streamed transfer (`Put`, `Blob`, `IndexResp`,
/// `Ranges` payloads): 1 GiB, far above any real checkpoint, small enough
/// to bound what a hostile peer can make either side buffer.
pub const MAX_TRANSFER_LEN: u64 = 1 << 30;

/// Most ids a `ListResp` may carry.
pub const MAX_LIST_IDS: usize = 1 << 16;

/// Longest bucket or checkpoint id token.
pub const MAX_TOKEN_LEN: usize = 160;

/// Most dimensions a `Ranges` row may declare (the tensor crate's ranks
/// are tiny; 16 is generous).
pub const MAX_RANK: usize = 16;

/// Application-level error codes carried by [`StoreMsg::Err`]. These are
/// *complete responses* — the connection stays usable — unlike wire-level
/// `WireError`s, which desync and drop it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// No checkpoint with the requested id in this bucket.
    NotFound,
    /// Invalid id/bucket token, over-cap request, or malformed container.
    BadRequest,
    /// Server-side failure (disk, etc.).
    Internal,
    /// Hello authentication failed.
    Unauthorized,
}

impl ErrCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrCode::NotFound => 0,
            ErrCode::BadRequest => 1,
            ErrCode::Internal => 2,
            ErrCode::Unauthorized => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(ErrCode::NotFound),
            1 => Ok(ErrCode::BadRequest),
            2 => Ok(ErrCode::Internal),
            3 => Ok(ErrCode::Unauthorized),
            _ => Err(WireError::Malformed("unknown store error code")),
        }
    }
}

/// One tensor's row in a [`StoreMsg::Ranges`] response. `name_idx` points
/// into the response's interned name table; decode rejects out-of-table
/// indices. The payload bytes stream separately (concatenated in row
/// order), `payload_len` each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRow {
    pub name_idx: u16,
    pub dims: Vec<usize>,
    pub checksum: u64,
    pub payload_len: u64,
}

/// Every frame of the store protocol. Tag bytes in comments.
#[derive(Debug, PartialEq)]
pub enum StoreMsg {
    /// 0x41 client→server: open a session on `bucket`. `mac` is
    /// HMAC-SHA256 over the hello transcript (see [`crate::auth::hello_mac`]);
    /// with an empty shared secret the server ignores it (open mode).
    Hello { version: u32, bucket: String, nonce: [u8; 16], mac: [u8; 32] },
    /// 0x42 server→client: session accepted.
    HelloAck { version: u32 },
    /// 0x43 client→server: store `total_len` bytes of an encoded WTC
    /// container under `id`; `Chunk` frames follow.
    Put { id: String, total_len: u64 },
    /// 0x44 both directions: one slice of a streamed transfer. The payload
    /// is raw bytes (no fields).
    Chunk(Vec<u8>),
    /// 0x45 server→client: `Put` durably applied (`bytes` written).
    PutAck { bytes: u64 },
    /// 0x46 client→server: request the checkpoint's table of contents.
    GetIndex { id: String },
    /// 0x47 server→client: `total_len` bytes of index follow as `Chunk`s —
    /// the WTC2 header prefix (a few hundred bytes), or the whole container
    /// for legacy WTC1. The client runs `parse_index` on them.
    IndexResp { total_len: u64 },
    /// 0x48 client→server: request only the named tensors.
    GetTensors { id: String, names: Vec<String> },
    /// 0x49 server→client: the selective response. `version` is the source
    /// container version (payload checksums are meaningful for v2). Rows'
    /// payloads follow as `Chunk`s, concatenated in row order. Names absent
    /// from the checkpoint are omitted, not errors.
    Ranges { version: u8, names: Vec<String>, rows: Vec<RangeRow> },
    /// 0x4A client→server: request the full encoded container.
    GetRaw { id: String },
    /// 0x4B server→client: `total_len` container bytes follow as `Chunk`s.
    Blob { total_len: u64 },
    /// 0x4C client→server.
    Exists { id: String },
    /// 0x4D server→client. `size` is meaningful only when `exists`.
    ExistsResp { exists: bool, size: u64 },
    /// 0x4E client→server.
    List,
    /// 0x4F server→client.
    ListResp { ids: Vec<String> },
    /// 0x50 client→server.
    Delete { id: String },
    /// 0x51 server→client.
    DeleteResp { existed: bool },
    /// 0x52 server→client: request failed; the session survives.
    Err { code: ErrCode, message: String },
}

fn put_id_frame(id: &str) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(2 + id.len());
    put_string(&mut out, id)?;
    Ok(out)
}

impl StoreMsg {
    /// Serialize to `(frame type, payload)`.
    pub fn encode(&self) -> Result<(u8, Vec<u8>), WireError> {
        match self {
            StoreMsg::Hello { version, bucket, nonce, mac } => {
                let mut out = Vec::with_capacity(4 + 2 + bucket.len() + 16 + 32);
                out.extend_from_slice(&version.to_le_bytes());
                put_string(&mut out, bucket)?;
                out.extend_from_slice(nonce);
                out.extend_from_slice(mac);
                Ok((0x41, out))
            }
            StoreMsg::HelloAck { version } => Ok((0x42, version.to_le_bytes().to_vec())),
            StoreMsg::Put { id, total_len } => {
                let mut out = put_id_frame(id)?;
                out.extend_from_slice(&total_len.to_le_bytes());
                Ok((0x43, out))
            }
            StoreMsg::Chunk(bytes) => Ok((0x44, bytes.clone())),
            StoreMsg::PutAck { bytes } => Ok((0x45, bytes.to_le_bytes().to_vec())),
            StoreMsg::GetIndex { id } => Ok((0x46, put_id_frame(id)?)),
            StoreMsg::IndexResp { total_len } => Ok((0x47, total_len.to_le_bytes().to_vec())),
            StoreMsg::GetTensors { id, names } => {
                if names.len() > MAX_GET_NAMES {
                    return Err(WireError::Malformed("too many names in GetTensors"));
                }
                let mut out = put_id_frame(id)?;
                out.extend_from_slice(&(names.len() as u16).to_le_bytes());
                for name in names {
                    put_string(&mut out, name)?;
                }
                Ok((0x48, out))
            }
            StoreMsg::Ranges { version, names, rows } => {
                if names.len() > MAX_GET_NAMES || rows.len() > MAX_GET_NAMES {
                    return Err(WireError::Malformed("too many rows in Ranges"));
                }
                let mut out = vec![*version];
                out.extend_from_slice(&(names.len() as u16).to_le_bytes());
                for name in names {
                    put_string(&mut out, name)?;
                }
                out.extend_from_slice(&(rows.len() as u16).to_le_bytes());
                for row in rows {
                    if row.dims.len() > MAX_RANK {
                        return Err(WireError::Malformed("tensor rank too large"));
                    }
                    out.extend_from_slice(&row.name_idx.to_le_bytes());
                    out.push(row.dims.len() as u8);
                    for &d in &row.dims {
                        let d = u32::try_from(d)
                            .map_err(|_| WireError::Malformed("dimension too large"))?;
                        out.extend_from_slice(&d.to_le_bytes());
                    }
                    out.extend_from_slice(&row.checksum.to_le_bytes());
                    out.extend_from_slice(&row.payload_len.to_le_bytes());
                }
                Ok((0x49, out))
            }
            StoreMsg::GetRaw { id } => Ok((0x4A, put_id_frame(id)?)),
            StoreMsg::Blob { total_len } => Ok((0x4B, total_len.to_le_bytes().to_vec())),
            StoreMsg::Exists { id } => Ok((0x4C, put_id_frame(id)?)),
            StoreMsg::ExistsResp { exists, size } => {
                let mut out = vec![u8::from(*exists)];
                out.extend_from_slice(&size.to_le_bytes());
                Ok((0x4D, out))
            }
            StoreMsg::List => Ok((0x4E, Vec::new())),
            StoreMsg::ListResp { ids } => {
                if ids.len() > MAX_LIST_IDS {
                    return Err(WireError::Malformed("too many ids in ListResp"));
                }
                let mut out = (ids.len() as u32).to_le_bytes().to_vec();
                for id in ids {
                    put_string(&mut out, id)?;
                }
                Ok((0x4F, out))
            }
            StoreMsg::Delete { id } => Ok((0x50, put_id_frame(id)?)),
            StoreMsg::DeleteResp { existed } => Ok((0x51, vec![u8::from(*existed)])),
            StoreMsg::Err { code, message } => {
                let mut out = vec![code.to_u8()];
                put_string(&mut out, message)?;
                Ok((0x52, out))
            }
        }
    }

    /// Decode a frame. Total: any `(ty, payload)` yields a message or a
    /// typed error.
    pub fn decode(ty: u8, payload: &[u8]) -> Result<StoreMsg, WireError> {
        let mut c = Cursor::new(payload);
        let msg = match ty {
            0x41 => {
                let version = c.u32()?;
                let bucket = c.string()?;
                let mut nonce = [0u8; 16];
                nonce.copy_from_slice(c.take(16)?);
                let mut mac = [0u8; 32];
                mac.copy_from_slice(c.take(32)?);
                StoreMsg::Hello { version, bucket, nonce, mac }
            }
            0x42 => StoreMsg::HelloAck { version: c.u32()? },
            0x43 => {
                let id = c.string()?;
                let total_len = c.u64()?;
                if total_len > MAX_TRANSFER_LEN {
                    return Err(WireError::Malformed("Put total_len over cap"));
                }
                StoreMsg::Put { id, total_len }
            }
            0x44 => return Ok(StoreMsg::Chunk(c.rest().to_vec())),
            0x45 => StoreMsg::PutAck { bytes: c.u64()? },
            0x46 => StoreMsg::GetIndex { id: c.string()? },
            0x47 => {
                let total_len = c.u64()?;
                if total_len > MAX_TRANSFER_LEN {
                    return Err(WireError::Malformed("IndexResp total_len over cap"));
                }
                StoreMsg::IndexResp { total_len }
            }
            0x48 => {
                let id = c.string()?;
                let count = c.u16()? as usize;
                if count > MAX_GET_NAMES {
                    return Err(WireError::Malformed("too many names in GetTensors"));
                }
                let mut names = Vec::with_capacity(count.min(256));
                for _ in 0..count {
                    names.push(c.string()?);
                }
                StoreMsg::GetTensors { id, names }
            }
            0x49 => {
                let version = c.u8()?;
                let name_count = c.u16()? as usize;
                if name_count > MAX_GET_NAMES {
                    return Err(WireError::Malformed("too many names in Ranges"));
                }
                let mut names = Vec::with_capacity(name_count.min(256));
                for _ in 0..name_count {
                    names.push(c.string()?);
                }
                let row_count = c.u16()? as usize;
                if row_count > MAX_GET_NAMES {
                    return Err(WireError::Malformed("too many rows in Ranges"));
                }
                let mut rows = Vec::with_capacity(row_count.min(256));
                for _ in 0..row_count {
                    let name_idx = c.u16()?;
                    if name_idx as usize >= names.len() {
                        return Err(WireError::Malformed("Ranges name index out of table"));
                    }
                    let rank = c.u8()? as usize;
                    if rank > MAX_RANK {
                        return Err(WireError::Malformed("tensor rank too large"));
                    }
                    let mut dims = Vec::with_capacity(rank);
                    for _ in 0..rank {
                        dims.push(c.u32()? as usize);
                    }
                    let checksum = c.u64()?;
                    let payload_len = c.u64()?;
                    if payload_len > MAX_TRANSFER_LEN {
                        return Err(WireError::Malformed("Ranges payload_len over cap"));
                    }
                    rows.push(RangeRow { name_idx, dims, checksum, payload_len });
                }
                StoreMsg::Ranges { version, names, rows }
            }
            0x4A => StoreMsg::GetRaw { id: c.string()? },
            0x4B => {
                let total_len = c.u64()?;
                if total_len > MAX_TRANSFER_LEN {
                    return Err(WireError::Malformed("Blob total_len over cap"));
                }
                StoreMsg::Blob { total_len }
            }
            0x4C => StoreMsg::Exists { id: c.string()? },
            0x4D => StoreMsg::ExistsResp { exists: c.u8()? != 0, size: c.u64()? },
            0x4E => StoreMsg::List,
            0x4F => {
                let count = c.u32()? as usize;
                if count > MAX_LIST_IDS {
                    return Err(WireError::Malformed("too many ids in ListResp"));
                }
                let mut ids = Vec::with_capacity(count.min(256));
                for _ in 0..count {
                    ids.push(c.string()?);
                }
                StoreMsg::ListResp { ids }
            }
            0x50 => StoreMsg::Delete { id: c.string()? },
            0x51 => StoreMsg::DeleteResp { existed: c.u8()? != 0 },
            0x52 => {
                let code = ErrCode::from_u8(c.u8()?)?;
                let message = c.string()?;
                StoreMsg::Err { code, message }
            }
            other => return Err(WireError::UnknownType(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

/// True iff `token` is acceptable as a bucket or checkpoint id: non-empty,
/// bounded, and made of filesystem-safe characters. Validated *before* any
/// store touch — `DirStore` asserts on hostile ids, and a network peer
/// must never be able to reach that assert (or escape the spill root).
pub fn valid_token(token: &str) -> bool {
    !token.is_empty()
        && token.len() <= MAX_TOKEN_LEN
        && !token.starts_with('.')
        && token.chars().all(|ch| ch.is_ascii_alphanumeric() || "._-".contains(ch))
}

/// Stream `bytes` as `Chunk` frames via `send` (one call per frame).
pub fn send_chunks(
    bytes: &[u8],
    mut send: impl FnMut(u8, &[u8]) -> Result<(), WireError>,
) -> Result<(), WireError> {
    for chunk in bytes.chunks(CHUNK_LEN) {
        send(0x44, chunk)?;
    }
    Ok(())
}

/// Collect exactly `total_len` bytes of `Chunk` frames via `recv` (which
/// yields `(frame type, payload)` pairs). A non-chunk frame mid-stream,
/// or chunks overshooting the declared total, is a protocol desync.
pub fn recv_chunks(
    total_len: u64,
    mut recv: impl FnMut(&mut Vec<u8>) -> Result<u8, WireError>,
) -> Result<Vec<u8>, WireError> {
    if total_len > MAX_TRANSFER_LEN {
        return Err(WireError::Malformed("transfer length over cap"));
    }
    let mut out = Vec::with_capacity((total_len as usize).min(CHUNK_LEN * 4));
    let mut buf = Vec::new();
    while (out.len() as u64) < total_len {
        let ty = recv(&mut buf)?;
        if ty != 0x44 {
            return Err(WireError::Protocol(format!(
                "expected Chunk frame mid-transfer, got type {ty:#04x}"
            )));
        }
        if out.len() as u64 + buf.len() as u64 > total_len {
            return Err(WireError::Protocol("chunks overshoot declared transfer length".into()));
        }
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: StoreMsg) -> Result<(), WireError> {
        let (ty, payload) = msg.encode()?;
        let back = StoreMsg::decode(ty, &payload)?;
        if back == msg {
            Ok(())
        } else {
            Err(WireError::Protocol(format!("round trip changed {msg:?} into {back:?}")))
        }
    }

    #[test]
    fn every_message_round_trips() -> Result<(), WireError> {
        round_trip(StoreMsg::Hello {
            version: STORE_PROTOCOL_VERSION,
            bucket: "run_a".into(),
            nonce: [7; 16],
            mac: [9; 32],
        })?;
        round_trip(StoreMsg::HelloAck { version: 1 })?;
        round_trip(StoreMsg::Put { id: "cand_17".into(), total_len: 13_000_000 })?;
        round_trip(StoreMsg::Chunk(vec![1, 2, 3]))?;
        round_trip(StoreMsg::Chunk(Vec::new()))?;
        round_trip(StoreMsg::PutAck { bytes: 42 })?;
        round_trip(StoreMsg::GetIndex { id: "cand_17".into() })?;
        round_trip(StoreMsg::IndexResp { total_len: 300 })?;
        round_trip(StoreMsg::GetTensors {
            id: "cand_17".into(),
            names: vec!["a/kernel".into(), "a/bias".into()],
        })?;
        round_trip(StoreMsg::Ranges {
            version: 2,
            names: vec!["a/kernel".into(), "a/bias".into()],
            rows: vec![
                RangeRow { name_idx: 0, dims: vec![4, 4], checksum: 77, payload_len: 64 },
                RangeRow { name_idx: 1, dims: vec![4], checksum: 78, payload_len: 16 },
            ],
        })?;
        round_trip(StoreMsg::GetRaw { id: "cand_17".into() })?;
        round_trip(StoreMsg::Blob { total_len: 1 << 24 })?;
        round_trip(StoreMsg::Exists { id: "x".into() })?;
        round_trip(StoreMsg::ExistsResp { exists: true, size: 9 })?;
        round_trip(StoreMsg::List)?;
        round_trip(StoreMsg::ListResp { ids: vec!["a".into(), "b".into()] })?;
        round_trip(StoreMsg::Delete { id: "x".into() })?;
        round_trip(StoreMsg::DeleteResp { existed: false })?;
        round_trip(StoreMsg::Err { code: ErrCode::NotFound, message: "no cand_9".into() })
    }

    #[test]
    fn hostile_name_index_is_rejected() -> Result<(), WireError> {
        let (ty, payload) = StoreMsg::Ranges {
            version: 2,
            names: vec!["only".into()],
            rows: vec![RangeRow { name_idx: 0, dims: vec![2], checksum: 0, payload_len: 8 }],
        }
        .encode()?;
        // Patch the row's name_idx (u16 right after the row count) to point
        // past the one-entry table.
        let mut evil = payload.clone();
        let row_start = evil.len() - (2 + 1 + 4 + 8 + 8);
        evil[row_start..row_start + 2].copy_from_slice(&1u16.to_le_bytes());
        assert!(matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))));
        Ok(())
    }

    #[test]
    fn oversized_declarations_are_rejected() -> Result<(), WireError> {
        let (ty, payload) = StoreMsg::Put { id: "x".into(), total_len: 1 }.encode()?;
        let mut evil = payload.clone();
        let n = evil.len();
        evil[n - 8..].copy_from_slice(&(MAX_TRANSFER_LEN + 1).to_le_bytes());
        assert!(matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))));

        // A GetTensors claiming 65535 names with no bytes behind the claim.
        let (ty, payload) = StoreMsg::GetTensors { id: "x".into(), names: vec![] }.encode()?;
        let mut evil = payload.clone();
        let n = evil.len();
        evil[n - 2..].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(StoreMsg::decode(ty, &evil), Err(WireError::Malformed(_))));
        Ok(())
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_typed_errors() -> Result<(), WireError> {
        assert!(matches!(StoreMsg::decode(0x60, &[]), Err(WireError::UnknownType(0x60))));
        let (ty, mut payload) = StoreMsg::PutAck { bytes: 3 }.encode()?;
        payload.push(0);
        assert!(matches!(StoreMsg::decode(ty, &payload), Err(WireError::Malformed(_))));
        Ok(())
    }

    #[test]
    fn token_validation_blocks_traversal_and_empties() {
        assert!(valid_token("cand_17.v2-final"));
        assert!(!valid_token(""));
        assert!(!valid_token("../evil"));
        assert!(!valid_token("a/b"));
        assert!(!valid_token(".hidden"));
        assert!(!valid_token(&"x".repeat(MAX_TOKEN_LEN + 1)));
    }

    #[test]
    fn chunk_streaming_round_trips_and_rejects_overshoot() -> Result<(), WireError> {
        let bytes: Vec<u8> = (0..CHUNK_LEN + 100).map(|i| i as u8).collect();
        let mut frames: Vec<(u8, Vec<u8>)> = Vec::new();
        send_chunks(&bytes, |ty, payload| {
            frames.push((ty, payload.to_vec()));
            Ok(())
        })?;
        assert_eq!(frames.len(), 2);
        let mut iter = frames.iter();
        let got = recv_chunks(bytes.len() as u64, |buf| {
            let (ty, payload) = iter.next().ok_or(WireError::Malformed("ran out of frames"))?;
            buf.clear();
            buf.extend_from_slice(payload);
            Ok(*ty)
        })?;
        assert_eq!(got, bytes);

        // Declared total smaller than the streamed bytes: desync, typed.
        let mut iter = frames.iter();
        let got = recv_chunks(10, |buf| {
            let (ty, payload) = iter.next().ok_or(WireError::Malformed("ran out of frames"))?;
            buf.clear();
            buf.extend_from_slice(payload);
            Ok(*ty)
        });
        assert!(matches!(got, Err(WireError::Protocol(_))));
        Ok(())
    }
}
