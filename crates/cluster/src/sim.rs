//! The discrete-event simulation itself.

use crate::config::ClusterConfig;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The measured cost of evaluating one candidate (taken from real CPU-run
/// traces and rescaled; see `swt-experiments::fig10`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCost {
    /// Pure training + scoring time on one worker, seconds.
    pub train_secs: f64,
    /// Provider checkpoint bytes read before training (0 for from-scratch
    /// candidates and for the baseline scheme).
    pub read_bytes: u64,
    /// In-memory matching + weight-copy time, seconds (the paper's
    /// "at most 150 ms" mechanism cost).
    pub transfer_secs: f64,
    /// Checkpoint bytes written after scoring (every candidate).
    pub write_bytes: u64,
}

/// Simulation outcome for one cluster size.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Wall-clock makespan of the whole candidate-estimation phase (the
    /// Fig. 10 bar height).
    pub makespan: f64,
    /// Sum of per-task busy time (compute + I/O) across workers.
    pub busy_secs: f64,
    /// Total seconds spent in PFS I/O across tasks.
    pub io_secs: f64,
    /// Mean worker utilisation in `[0, 1]`.
    pub utilization: f64,
    /// Number of tasks simulated.
    pub tasks: usize,
}

/// Execute a bag of candidate-evaluation tasks on the simulated cluster.
///
/// Workers pull tasks in order; a task is dispatched by the (serial)
/// scheduler, reads its provider checkpoint from the PFS if any, computes,
/// then writes its own checkpoint. PFS contention is approximated by the
/// expected number of concurrently active workers (`min(gpus, tasks-left)`),
/// scaling the effective bandwidth — adequate for makespan-level fidelity.
pub fn simulate(cfg: &ClusterConfig, tasks: &[TaskCost]) -> SimReport {
    assert!(cfg.gpus > 0, "cluster needs at least one GPU");
    // Min-heap of worker free times.
    let mut workers: BinaryHeap<Reverse<OrderedF64>> = BinaryHeap::new();
    for _ in 0..cfg.gpus {
        workers.push(Reverse(OrderedF64(0.0)));
    }
    // Average concurrency for the contention model: tasks >> gpus keeps all
    // workers busy, so contention ~ gpu count.
    let concurrency = cfg.gpus.min(tasks.len().max(1));

    let mut dispatch_free = 0.0f64;
    let mut makespan = 0.0f64;
    let mut busy_secs = 0.0f64;
    let mut io_secs = 0.0f64;
    for task in tasks {
        let Reverse(OrderedF64(worker_free)) = workers.pop().expect("worker pool non-empty");
        // The scheduler serialises dispatches (Algorithm 1 runs in one
        // process); a task starts when both its worker and the scheduler are
        // ready.
        let dispatch_at = dispatch_free.max(worker_free);
        dispatch_free = dispatch_at + cfg.dispatch_secs;
        let start = dispatch_free;

        let read =
            if task.read_bytes > 0 { cfg.pfs.read_secs(task.read_bytes, concurrency) } else { 0.0 };
        let write = cfg.pfs.write_secs(task.write_bytes, concurrency);
        let duration = read + task.transfer_secs + task.train_secs + write;
        let end = start + duration;
        busy_secs += duration;
        io_secs += read + write;
        makespan = makespan.max(end);
        workers.push(Reverse(OrderedF64(end)));
    }
    let utilization = if makespan > 0.0 { busy_secs / (makespan * cfg.gpus as f64) } else { 0.0 };
    SimReport { makespan, busy_secs, io_secs, utilization, tasks: tasks.len() }
}

/// Total-order f64 wrapper for the worker heap (finite values only).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("simulation times are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PfsModel;

    fn cluster(gpus: usize, dispatch: f64) -> ClusterConfig {
        ClusterConfig {
            name: "test".into(),
            gpus,
            pfs: PfsModel { read_bw: 1e9, write_bw: 1e9, latency: 0.001 },
            dispatch_secs: dispatch,
        }
    }

    fn long_tasks(n: usize) -> Vec<TaskCost> {
        vec![
            TaskCost { train_secs: 60.0, read_bytes: 0, transfer_secs: 0.0, write_bytes: 1_000_000 };
            n
        ]
    }

    #[test]
    fn single_gpu_is_serial() {
        let tasks = long_tasks(4);
        let r = simulate(&cluster(1, 0.0), &tasks);
        assert!((r.makespan - 4.0 * (60.0 + 0.001 + 0.001)).abs() < 1e-6);
        assert!(r.utilization > 0.99);
    }

    #[test]
    fn long_tasks_scale_nearly_linearly() {
        // The paper's CIFAR-10/MNIST/Uno case: training dominates, so 8 -> 16
        // -> 32 GPUs halves the time each step.
        let tasks = long_tasks(400);
        let t8 = simulate(&cluster(8, 0.05), &tasks).makespan;
        let t16 = simulate(&cluster(16, 0.05), &tasks).makespan;
        let t32 = simulate(&cluster(32, 0.05), &tasks).makespan;
        assert!((t8 / t16 - 2.0).abs() < 0.1, "8->16 speedup {}", t8 / t16);
        assert!((t16 / t32 - 2.0).abs() < 0.15, "16->32 speedup {}", t16 / t32);
    }

    #[test]
    fn short_tasks_hit_the_dispatch_bottleneck() {
        // The NT3 case: ~6-second trainings with checkpoint reads; the
        // serial dispatcher caps throughput, so 16 -> 32 is sublinear.
        let tasks: Vec<TaskCost> = (0..400)
            .map(|_| TaskCost {
                train_secs: 1.0,
                read_bytes: 40_000_000,
                transfer_secs: 0.1,
                write_bytes: 40_000_000,
            })
            .collect();
        let t16 = simulate(&cluster(16, 0.1), &tasks).makespan;
        let t32 = simulate(&cluster(32, 0.1), &tasks).makespan;
        let speedup = t16 / t32;
        assert!(speedup < 1.7, "short tasks must scale sublinearly, got {speedup}");
    }

    #[test]
    fn transfer_reads_add_overhead_vs_baseline() {
        let baseline: Vec<TaskCost> = (0..100)
            .map(|_| TaskCost {
                train_secs: 5.0,
                read_bytes: 0,
                transfer_secs: 0.0,
                write_bytes: 10_000_000,
            })
            .collect();
        let transfer: Vec<TaskCost> = baseline
            .iter()
            .map(|t| TaskCost { read_bytes: 10_000_000, transfer_secs: 0.15, ..*t })
            .collect();
        let cfg = cluster(8, 0.05);
        let tb = simulate(&cfg, &baseline);
        let tt = simulate(&cfg, &transfer);
        assert!(tt.makespan > tb.makespan, "transfer adds I/O overhead");
        assert!(tt.io_secs > tb.io_secs);
        // But the overhead stays modest relative to training (Fig. 10's
        // "constant time overhead" observation for the long-training apps).
        assert!(tt.makespan / tb.makespan < 1.25);
    }

    #[test]
    fn utilization_and_accounting_are_consistent() {
        let tasks = long_tasks(37);
        let cfg = cluster(4, 0.01);
        let r = simulate(&cfg, &tasks);
        assert_eq!(r.tasks, 37);
        assert!(r.utilization <= 1.0 + 1e-9);
        assert!(r.busy_secs <= r.makespan * cfg.gpus as f64 + 1e-9);
        assert!(r.io_secs < r.busy_secs);
    }

    #[test]
    fn empty_task_list_is_zero() {
        let r = simulate(&cluster(4, 0.01), &[]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.utilization, 0.0);
    }

    #[test]
    fn more_gpus_never_hurt() {
        let tasks: Vec<TaskCost> = (0..200)
            .map(|i| TaskCost {
                train_secs: 1.0 + (i % 7) as f64,
                read_bytes: (i % 3) * 5_000_000,
                transfer_secs: 0.05,
                write_bytes: 8_000_000,
            })
            .collect();
        let mut prev = f64::INFINITY;
        for gpus in [1, 2, 4, 8, 16, 32] {
            let t = simulate(&cluster(gpus, 0.02), &tasks).makespan;
            assert!(t <= prev + 1e-9, "{gpus} GPUs slower than fewer");
            prev = t;
        }
    }
}
