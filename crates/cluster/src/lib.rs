//! Discrete-event cluster simulator for the scalability study (Fig. 10).
//!
//! The paper measures candidate estimation for 400 models on 8, 16 and 32
//! NVIDIA A100 GPUs. No GPUs exist in this environment, so the experiment is
//! reproduced with a simulator whose inputs are *real measured quantities*
//! from this repository's CPU runs: per-candidate training times, checkpoint
//! sizes, and transfer/matching times. The simulator models
//!
//! * `gpus` identical workers executing a bag of candidate-evaluation tasks,
//! * a parallel file system with finite bandwidth and per-operation latency
//!   (checkpoint writes for every candidate; reads for transferred
//!   children),
//! * a serial scheduler dispatch cost per task — the Ray-evaluator overhead
//!   the paper blames for NT3's sublinear scaling ("the Ray evaluator
//!   frequently changes the objects in its local store", Section VIII-E).
//!
//! Wall-clock scalability of a bag-of-tasks workload is fully determined by
//! these quantities, which is what makes the substitution sound.

pub mod config;
pub mod replay;
pub mod sim;

pub use config::{ClusterConfig, PfsModel};
pub use replay::{replay_policy, scenario_tasks, ReplayConfig, ReplayReport, ReplayView};
pub use sim::{simulate, SimReport, TaskCost};
