//! Cluster configuration (the simulated analogue of the paper's Table II).

/// Parallel-file-system model: shared bandwidth plus per-operation latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfsModel {
    /// Aggregate read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Aggregate write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Fixed per-operation latency, seconds (metadata + open/close).
    pub latency: f64,
}

impl PfsModel {
    /// Time to read `bytes` under `concurrent` simultaneous streams (the
    /// bandwidth is shared).
    pub fn read_secs(&self, bytes: u64, concurrent: usize) -> f64 {
        self.latency + bytes as f64 * concurrent.max(1) as f64 / self.read_bw
    }

    /// Time to write `bytes` under `concurrent` simultaneous streams.
    pub fn write_secs(&self, bytes: u64, concurrent: usize) -> f64 {
        self.latency + bytes as f64 * concurrent.max(1) as f64 / self.write_bw
    }
}

/// A simulated GPU cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Human-readable description (Table II analogue).
    pub name: String,
    /// Worker (GPU) count.
    pub gpus: usize,
    pub pfs: PfsModel,
    /// Serial scheduler cost per task dispatch (Ray evaluator overhead).
    pub dispatch_secs: f64,
}

impl ClusterConfig {
    /// The paper's Node Type A: 8 × NVIDIA A100 per node; 1, 2 or 4 nodes
    /// give the 8/16/32-GPU points of Fig. 10. PFS numbers are modelled on a
    /// mid-size Lustre deployment; the dispatch cost matches the paper's
    /// "at most 150 ms" weight-transfer bookkeeping plus Ray task launch.
    pub fn node_type_a(nodes: usize) -> ClusterConfig {
        assert!(nodes > 0);
        ClusterConfig {
            name: format!("{nodes}x Node Type A (4x AMD EPYC 7742, 8x NVIDIA A100 40GB)"),
            gpus: nodes * 8,
            pfs: PfsModel { read_bw: 2.0e9, write_bw: 1.5e9, latency: 0.01 },
            dispatch_secs: 0.05,
        }
    }

    /// Table II rendered as text (for the `table2` experiment binary).
    pub fn describe(&self) -> String {
        format!(
            "{}\n  GPUs: {}\n  PFS: read {:.1} GB/s, write {:.1} GB/s, latency {:.0} ms\n  scheduler dispatch: {:.0} ms/task",
            self.name,
            self.gpus,
            self.pfs.read_bw / 1e9,
            self.pfs.write_bw / 1e9,
            self.pfs.latency * 1e3,
            self.dispatch_secs * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_type_a_gpu_counts() {
        assert_eq!(ClusterConfig::node_type_a(1).gpus, 8);
        assert_eq!(ClusterConfig::node_type_a(2).gpus, 16);
        assert_eq!(ClusterConfig::node_type_a(4).gpus, 32);
    }

    #[test]
    fn pfs_times_scale_with_bytes_and_contention() {
        let pfs = PfsModel { read_bw: 1e9, write_bw: 1e9, latency: 0.01 };
        let one = pfs.read_secs(100_000_000, 1);
        let contended = pfs.read_secs(100_000_000, 4);
        assert!((one - 0.11).abs() < 1e-9);
        assert!(contended > one);
        // Latency dominates tiny transfers.
        assert!((pfs.write_secs(0, 1) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn describe_mentions_key_numbers() {
        let d = ClusterConfig::node_type_a(4).describe();
        assert!(d.contains("GPUs: 32"));
        assert!(d.contains("A100"));
    }
}
