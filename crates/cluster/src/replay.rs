//! Deterministic policy replay against the simulator's cost model.
//!
//! The autoscaling policy in `swt-dist` is a pure function of a pool
//! snapshot, so the same decision rule can be driven by the cluster
//! simulator instead of a live run: time is simulated, per-task costs come
//! from [`TaskCost`]s, and the policy is consulted at fixed decision ticks.
//! `bench_autoscale` uses this to put a *predicted* makespan next to the
//! measured elastic run, and the prediction itself is pinned by a
//! regression test — the replay is seeded and wall-clock-free, so the same
//! `(seed, scenario, policy)` triple produces the same number on any host.
//!
//! The policy is a plain closure `FnMut(&ReplayView) -> isize` (positive =
//! grow by that many workers, negative = shrink, zero = hold) rather than a
//! `swt-dist` type: `swt-cluster` stays a leaf crate, and `swt-dist`'s
//! `ScalePolicy` adapts onto the closure at the call site.

use crate::config::ClusterConfig;
use crate::sim::TaskCost;

/// Matches `swt-dist`'s live-view smoothing factor so replayed EWMA costs
/// track what the real coordinator would observe.
const EWMA_ALPHA: f64 = 0.2;

/// Backstop on decision ticks: a policy that never drains the queue (e.g. a
/// hostile closure shrinking to the floor forever while work remains) ends
/// the replay here instead of spinning.
const MAX_REPLAY_TICKS: u64 = 1_000_000;

/// What the replayed policy sees at one decision tick — the simulator-side
/// analogue of `swt-dist`'s pool snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayView {
    /// Decision tick number (1-based).
    pub tick: u64,
    /// Simulated seconds elapsed.
    pub now: f64,
    /// Tasks not yet dispatched to a worker.
    pub queue_depth: usize,
    /// Workers currently evaluating a task.
    pub busy: usize,
    /// Pool size: busy + idle + still spawning.
    pub workers: usize,
    /// EWMA per-task duration observed so far, seconds (0 until the first
    /// completion).
    pub ewma_secs: f64,
}

/// Replay knobs: decision cadence, spawn ramp, and the pool envelope the
/// policy's deltas are clamped to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Simulated seconds between policy decision ticks.
    pub tick_secs: f64,
    /// Simulated seconds a grown worker takes to come online.
    pub spawn_secs: f64,
    /// Pool floor, also the starting size (clamped to ≥ 1).
    pub min_workers: usize,
    /// Pool ceiling; grow deltas past it are dropped.
    pub max_workers: usize,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig { tick_secs: 0.5, spawn_secs: 1.0, min_workers: 1, max_workers: 8 }
    }
}

/// Outcome of one policy replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Simulated wall-clock until the last task completes.
    pub makespan: f64,
    /// Decision ticks taken.
    pub decisions: u64,
    /// Workers added by grow decisions.
    pub grown: usize,
    /// Workers removed by shrink decisions.
    pub retired: usize,
    /// Largest pool size reached (including workers still spawning).
    pub peak_workers: usize,
    /// Pool size when the replay ended.
    pub final_workers: usize,
    /// Sum of per-task busy time across workers.
    pub busy_secs: f64,
    /// Tasks executed.
    pub tasks: usize,
}

/// Replay `policy` over `tasks` on an elastic pool. Costs (PFS contention,
/// serial dispatch) follow [`crate::simulate`]'s model; the worker count is
/// owned by the policy instead of `cluster.gpus`, starting at
/// `cfg.min_workers` and moving only at decision ticks. Grow deltas come
/// online after `cfg.spawn_secs`; shrink deltas retire *idle* workers only
/// (never mid-task), mirroring the coordinator's drain-then-close rule.
pub fn replay_policy(
    cluster: &ClusterConfig,
    cfg: &ReplayConfig,
    tasks: &[TaskCost],
    mut policy: impl FnMut(&ReplayView) -> isize,
) -> ReplayReport {
    let floor = cfg.min_workers.max(1);
    let ceiling = cfg.max_workers.max(floor);
    let tick_secs = if cfg.tick_secs > 0.0 { cfg.tick_secs } else { 0.5 };

    // Free-at time per pool worker; a worker is busy while its entry is in
    // the future. Spawning workers live in `spawning` until they come
    // online.
    let mut free_at: Vec<f64> = vec![0.0; floor];
    let mut spawning: Vec<f64> = Vec::new();
    // In-flight (end, duration) pairs, drained in end order to feed the
    // EWMA exactly as completions would feed the live view.
    let mut inflight: Vec<(f64, f64)> = Vec::new();

    let mut now = 0.0f64;
    let mut tick = 0u64;
    let mut dispatch_free = 0.0f64;
    let mut ewma = 0.0f64;
    let mut next_task = 0usize;
    let mut makespan = 0.0f64;
    let mut busy_secs = 0.0f64;
    let mut grown = 0usize;
    let mut retired = 0usize;
    let mut peak = floor;

    loop {
        // 1. Spawns that finished their ramp join the pool idle.
        let mut i = 0;
        while i < spawning.len() {
            if spawning[i] <= now {
                spawning.swap_remove(i);
                free_at.push(now);
            } else {
                i += 1;
            }
        }

        // 2. Completions up to `now` feed the EWMA in end order.
        inflight.sort_by(|a, b| a.0.total_cmp(&b.0));
        while inflight.first().is_some_and(|&(end, _)| end <= now) {
            let (_, dur) = inflight.remove(0);
            ewma = if ewma == 0.0 { dur } else { EWMA_ALPHA * dur + (1.0 - EWMA_ALPHA) * ewma };
        }

        // 3. Hand queued tasks to idle workers (serial dispatch, shared
        // PFS — the same cost model as `simulate`).
        while next_task < tasks.len() {
            let Some(w) = free_at.iter().position(|&t| t <= now) else {
                break;
            };
            let task = &tasks[next_task];
            let concurrency = free_at.len().min(tasks.len() - next_task);
            let dispatch_at = dispatch_free.max(now);
            dispatch_free = dispatch_at + cluster.dispatch_secs;
            let start = dispatch_free;
            let read = if task.read_bytes > 0 {
                cluster.pfs.read_secs(task.read_bytes, concurrency)
            } else {
                0.0
            };
            let write = cluster.pfs.write_secs(task.write_bytes, concurrency);
            let duration = read + task.transfer_secs + task.train_secs + write;
            let end = start + duration;
            free_at[w] = end;
            inflight.push((end, duration));
            busy_secs += duration;
            makespan = makespan.max(end);
            next_task += 1;
        }

        let busy = free_at.iter().filter(|&&t| t > now).count();
        if next_task >= tasks.len() && busy == 0 {
            break;
        }

        // 4. One policy decision, clamped to the envelope.
        tick += 1;
        if tick > MAX_REPLAY_TICKS {
            break;
        }
        let view = ReplayView {
            tick,
            now,
            queue_depth: tasks.len() - next_task,
            busy,
            workers: free_at.len() + spawning.len(),
            ewma_secs: ewma,
        };
        let delta = policy(&view);
        if delta > 0 {
            for _ in 0..delta {
                if free_at.len() + spawning.len() >= ceiling {
                    break;
                }
                spawning.push(now + cfg.spawn_secs);
                grown += 1;
            }
        } else if delta < 0 {
            for _ in 0..delta.unsigned_abs() {
                if free_at.len() + spawning.len() <= floor {
                    break;
                }
                // Retire idle workers only; a pool that is all-busy holds.
                let Some(w) = free_at.iter().position(|&t| t <= now) else {
                    break;
                };
                free_at.swap_remove(w);
                retired += 1;
            }
        }
        peak = peak.max(free_at.len() + spawning.len());
        now += tick_secs;
    }

    ReplayReport {
        makespan,
        decisions: tick,
        grown,
        retired,
        peak_workers: peak,
        final_workers: free_at.len() + spawning.len(),
        busy_secs,
        tasks: next_task,
    }
}

/// Deterministic task-cost scenario (splitmix64): the same `(seed, n)`
/// produces byte-identical workloads on every host, which is what lets
/// regression tests and BENCH_autoscale pin predicted makespans.
pub fn scenario_tasks(seed: u64, n: usize) -> Vec<TaskCost> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let train = 1.0 + (splitmix(&mut state) % 700) as f64 / 100.0;
            let read = if splitmix(&mut state).is_multiple_of(3) {
                0
            } else {
                5_000_000 + splitmix(&mut state) % 45_000_000
            };
            let transfer =
                if read > 0 { 0.05 + (splitmix(&mut state) % 100) as f64 / 1000.0 } else { 0.0 };
            let write = 5_000_000 + splitmix(&mut state) % 35_000_000;
            TaskCost {
                train_secs: train,
                read_bytes: read,
                transfer_secs: transfer,
                write_bytes: write,
            }
        })
        .collect()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PfsModel;
    use crate::sim::simulate;

    fn cluster() -> ClusterConfig {
        ClusterConfig {
            name: "replay-test".into(),
            gpus: 8, // ignored by replay; pool size is policy-owned
            pfs: PfsModel { read_bw: 1e9, write_bw: 1e9, latency: 0.005 },
            dispatch_secs: 0.02,
        }
    }

    /// Greedy backlog-chasing policy: one grow step while more than one
    /// queued task per worker, shrink once the queue is dry.
    fn backlog_policy(view: &ReplayView) -> isize {
        if view.queue_depth > view.workers {
            1
        } else if view.queue_depth == 0 && view.busy < view.workers {
            -1
        } else {
            0
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let tasks = scenario_tasks(0xA5CA1E, 64);
        let cfg = ReplayConfig::default();
        let a = replay_policy(&cluster(), &cfg, &tasks, backlog_policy);
        let b = replay_policy(&cluster(), &cfg, &tasks, backlog_policy);
        assert_eq!(a, b);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "bit-identical makespan");
    }

    #[test]
    fn scenario_generator_is_seed_stable() {
        assert_eq!(scenario_tasks(7, 16), scenario_tasks(7, 16));
        assert_ne!(scenario_tasks(7, 16), scenario_tasks(8, 16));
        // Longer scenarios extend shorter ones: the generator is a stream.
        assert_eq!(scenario_tasks(7, 32)[..16], scenario_tasks(7, 16)[..]);
    }

    /// The committed scenario behind BENCH_autoscale's prediction: pinned
    /// so a cost-model change that would silently skew the bench gate fails
    /// here first. The constant was produced by this exact code; the replay
    /// is pure IEEE arithmetic with no time or randomness, so it reproduces
    /// across hosts.
    #[test]
    fn pinned_scenario_makespan_regression() {
        let tasks = scenario_tasks(0xA5CA1E, 64);
        let r = replay_policy(&cluster(), &ReplayConfig::default(), &tasks, backlog_policy);
        assert_eq!(r.tasks, 64);
        let pinned = 46.783325359;
        assert!(
            (r.makespan - pinned).abs() < 1e-9,
            "pinned replay makespan drifted: got {}, pinned {pinned}",
            r.makespan
        );
    }

    #[test]
    fn elastic_replay_tracks_the_wide_pool_not_the_floor() {
        // The bench gate's shape: an elastic replay that grows toward W
        // must land closer to simulate(W) than the static 1-worker run does.
        let tasks = scenario_tasks(0xBEEF, 96);
        let c = cluster();
        let wide = simulate(&ClusterConfig { gpus: 8, ..c.clone() }, &tasks).makespan;
        let narrow = simulate(&ClusterConfig { gpus: 1, ..c.clone() }, &tasks).makespan;
        let elastic = replay_policy(&c, &ReplayConfig::default(), &tasks, backlog_policy).makespan;
        assert!(
            (elastic - wide).abs() < (narrow - wide).abs(),
            "elastic {elastic} must sit nearer wide {wide} than narrow {narrow}"
        );
    }

    #[test]
    fn hostile_policy_deltas_stay_inside_the_envelope() {
        let tasks = scenario_tasks(3, 40);
        let cfg = ReplayConfig { min_workers: 2, max_workers: 5, ..ReplayConfig::default() };
        let grow_mad = replay_policy(&cluster(), &cfg, &tasks, |_| isize::MAX);
        assert!(grow_mad.peak_workers <= 5, "peak {} breached max", grow_mad.peak_workers);
        assert_eq!(grow_mad.tasks, 40);
        let shrink_mad = replay_policy(&cluster(), &cfg, &tasks, |_| isize::MIN);
        assert!(shrink_mad.final_workers >= 2, "shrank below the floor");
        assert_eq!(shrink_mad.tasks, 40, "a floor-hugging pool still finishes the work");
    }

    #[test]
    fn empty_scenario_ends_immediately() {
        let r = replay_policy(&cluster(), &ReplayConfig::default(), &[], |_| 1);
        assert_eq!((r.makespan, r.decisions, r.tasks), (0.0, 0, 0));
    }

    #[test]
    fn accounting_is_conserved() {
        let tasks = scenario_tasks(11, 50);
        let r = replay_policy(&cluster(), &ReplayConfig::default(), &tasks, backlog_policy);
        assert_eq!(r.tasks, 50);
        assert!(r.busy_secs > 0.0 && r.makespan > 0.0);
        // Starting at the floor, every retirement undoes a grow.
        assert!(r.retired <= r.grown, "retired {} > grown {}", r.retired, r.grown);
        assert!(r.peak_workers <= ReplayConfig::default().max_workers);
        assert!(r.final_workers >= ReplayConfig::default().min_workers);
    }
}
