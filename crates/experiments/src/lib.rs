//! Shared harness for the per-figure/per-table experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--scale quick|full` — quick (default) is CI-sized; full approaches the
//!   paper's counts (400 candidates, 5 seeds, population 64/32).
//! * `--workers N` — evaluator threads (default: available cores − 2).
//! * `--apps a,b` — restrict to a subset of `cifar10,mnist,nt3,uno`.
//! * `--out DIR` — results directory (default `results/`).
//!
//! NAS runs are cached: traces land in `<out>/traces/` as CSV and candidate
//! checkpoints in `<out>/ckpts/<run>/`, so `fig8`, `fig9`, `table3` and
//! `table4` reuse the runs produced by `fig7` instead of recomputing them.

pub mod calibrate;
pub mod fulltrain;

use std::path::{Path, PathBuf};
use std::sync::Arc;
use swt_checkpoint::{CheckpointStore, DirStore};
use swt_core::TransferScheme;
use swt_data::{AppKind, AppProblem, DataScale};
use swt_nas::{run_nas, NasConfig, NasTrace, ProviderPolicy, StrategyKind};
use swt_space::SearchSpace;

/// Parsed command-line context shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    pub scale: DataScale,
    /// Run seeds (one NAS run per seed; the paper repeats 5 times).
    pub seeds: Vec<u64>,
    /// Candidates per NAS run (paper: 400).
    pub candidates: usize,
    /// Evaluator threads.
    pub workers: usize,
    /// Pairs for the Figs. 2/4/5 studies.
    pub pairs: usize,
    /// Evolution population / tournament sizes.
    pub population: usize,
    pub sample: usize,
    /// Applications to run.
    pub apps: Vec<AppKind>,
    /// Results directory.
    pub out: PathBuf,
}

impl ExpCtx {
    /// Parse `std::env::args()`.
    pub fn from_args() -> ExpCtx {
        Self::from_vec(std::env::args().collect())
    }

    /// Parse an explicit argument vector (testable core of [`ExpCtx::from_args`]).
    pub fn from_vec(args: Vec<String>) -> ExpCtx {
        let get = |flag: &str| -> Option<String> {
            args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
        };
        let scale_name = get("--scale").unwrap_or_else(|| "quick".into());
        let scale = match scale_name.as_str() {
            "full" | "paper" => DataScale::Full,
            _ => DataScale::Quick,
        };
        let default_workers = std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(2).max(1))
            .unwrap_or(4);
        let workers = get("--workers").and_then(|w| w.parse().ok()).unwrap_or(default_workers);
        let apps = match get("--apps") {
            Some(list) => list
                .split(',')
                .map(|name| match name.trim().to_lowercase().as_str() {
                    "cifar10" | "cifar-10" | "cifar" => AppKind::Cifar10,
                    "mnist" => AppKind::Mnist,
                    "nt3" => AppKind::Nt3,
                    "uno" => AppKind::Uno,
                    other => panic!("unknown app {other:?}"),
                })
                .collect(),
            None => AppKind::all().to_vec(),
        };
        let out = PathBuf::from(get("--out").unwrap_or_else(|| "results".into()));
        let mut ctx = match scale_name.as_str() {
            // The paper's exact counts (400 candidates, 5 seeds, population
            // 64/32, 1000 trained pairs) on full-size synthetic data.
            "paper" => ExpCtx {
                scale,
                seeds: vec![1, 2, 3, 4, 5],
                candidates: 400,
                workers,
                pairs: 1000,
                population: 64,
                sample: 32,
                apps,
                out,
            },
            // The repository's recorded scale: full-size data, reduced
            // counts so the whole suite fits a small CPU budget.
            "full" => ExpCtx {
                scale,
                seeds: vec![1, 2, 3],
                candidates: 200,
                workers,
                pairs: 300,
                population: 32,
                sample: 16,
                apps,
                out,
            },
            _ => ExpCtx {
                scale,
                seeds: vec![1, 2, 3],
                candidates: 60,
                workers,
                pairs: 200,
                population: 16,
                sample: 8,
                apps,
                out,
            },
        };
        if let Some(c) = get("--candidates").and_then(|v| v.parse().ok()) {
            ctx.candidates = c;
        }
        if let Some(p) = get("--pairs").and_then(|v| v.parse().ok()) {
            ctx.pairs = p;
        }
        if let Some(s) = get("--seeds").and_then(|v| v.parse::<usize>().ok()) {
            ctx.seeds = (1..=s as u64).collect();
        }
        std::fs::create_dir_all(ctx.out.join("traces")).expect("create results dir");
        std::fs::create_dir_all(ctx.out.join("ckpts")).expect("create results dir");
        // Observability: record spans/counters for every run this context
        // launches; `SWT_LOG_JSON=<path>` additionally mirrors log records
        // to a JSONL file. Reports land next to each trace CSV.
        swt_obs::enable();
        if let Ok(path) = std::env::var("SWT_LOG_JSON") {
            if let Err(e) = swt_obs::log::set_jsonl_path(Path::new(&path)) {
                swt_obs::warn!("swt_experiments", "cannot open SWT_LOG_JSON={path}: {e}");
            }
        }
        ctx
    }

    /// Dataset seed: fixed per app so every scheme/seed sees the same data.
    pub fn data_seed(&self, app: AppKind) -> u64 {
        0xDA7A_0000 + app as u64
    }

    /// The problem instance for an app at this context's scale.
    pub fn problem(&self, app: AppKind) -> Arc<AppProblem> {
        Arc::new(app.problem(self.scale, self.data_seed(app)))
    }

    /// Canonical run name for caching.
    pub fn run_name(
        &self,
        app: AppKind,
        scheme: TransferScheme,
        strategy: StrategyKind,
        seed: u64,
    ) -> String {
        let strat = match strategy {
            StrategyKind::Random => "rand",
            StrategyKind::Evolution => "evo",
        };
        let data = match self.scale {
            DataScale::Quick => "q",
            DataScale::Full => "f",
        };
        format!(
            "{}_{}_{}_s{}_c{}_p{}_{}",
            app.name().to_lowercase().replace('-', ""),
            scheme.name().to_lowercase(),
            strat,
            seed,
            self.candidates,
            self.population,
            data
        )
    }

    /// Run one NAS (or load it from the cache). Returns the trace and the
    /// checkpoint store holding every candidate of the run.
    pub fn run_or_load(
        &self,
        app: AppKind,
        scheme: TransferScheme,
        strategy: StrategyKind,
        seed: u64,
    ) -> (NasTrace, Arc<dyn CheckpointStore>) {
        let name = self.run_name(app, scheme, strategy, seed);
        let trace_path = self.out.join("traces").join(format!("{name}.csv"));
        let ckpt_dir = self.out.join("ckpts").join(&name);
        let store: Arc<dyn CheckpointStore> =
            Arc::new(DirStore::new(&ckpt_dir).expect("open checkpoint dir"));
        if trace_path.exists() {
            if let Ok(trace) = NasTrace::read_csv(&trace_path) {
                if trace.events.len() == self.candidates
                    && trace.events.iter().all(|e| store.exists(&format!("c{}", e.id)))
                {
                    swt_obs::info!("swt_experiments", "cache {name}");
                    return (trace, store);
                }
            }
        }
        swt_obs::info!(
            "swt_experiments",
            "run {name} ({} candidates, {} workers)",
            self.candidates,
            self.workers
        );
        let problem = self.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        let cfg = NasConfig {
            scheme,
            strategy,
            provider: ProviderPolicy::Parent,
            total_candidates: self.candidates,
            workers: self.workers,
            epochs: 1,
            seed,
            population_size: self.population.min(self.candidates),
            sample_size: self.sample.min(self.population.min(self.candidates)),
            cache_bytes: 256 << 20,
            namespace: String::new(),
            batch_eval: swt_nas::BatchEval::Off,
            fidelity: swt_nas::FidelityConfig::off(),
        };
        swt_obs::reset();
        let trace = run_nas(problem, space, Arc::clone(&store), &cfg);
        trace.write_csv(&trace_path).expect("write trace");
        // Per-run observability report (span/counter breakdown per worker)
        // next to the trace CSV — the time-attribution data behind the
        // paper's Figs. 7–11.
        let report = swt_obs::RunReport::capture()
            .with_meta("app", app.name())
            .with_meta("scheme", scheme.name())
            .with_meta("seed", seed)
            .with_meta("workers", self.workers)
            .with_meta("candidates", self.candidates)
            .with_meta("wall_secs", trace.wall_secs);
        let report_path = self.out.join("traces").join(format!("{name}.report.json"));
        match report.write_json(&report_path) {
            Ok(()) => swt_obs::info!("swt_experiments", "report {}", report_path.display()),
            Err(e) => {
                swt_obs::warn!("swt_experiments", "cannot write {}: {e}", report_path.display())
            }
        }
        (trace, store)
    }
}

/// Print an aligned text table (the experiment binaries' standard output
/// format, mirroring the paper's tables).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:<w$}  "));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        line(row);
    }
}

/// Write rows as CSV under the results directory.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) {
    let mut s = String::new();
    s.push_str(&headers.join(","));
    s.push('\n');
    for row in rows {
        s.push_str(&row.join(","));
        s.push('\n');
    }
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, s).expect("write csv");
    swt_obs::info!("swt_experiments", "csv {}", path.display());
}

/// Percentage formatting used by the figure tables.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_nas::StrategyKind;

    fn ctx(args: &[&str]) -> ExpCtx {
        let mut v = vec!["prog".to_string()];
        v.extend(args.iter().map(|s| s.to_string()));
        // Route outputs to a scratch dir so tests don't pollute results/.
        if !args.contains(&"--out") {
            v.push("--out".into());
            v.push(std::env::temp_dir().join("swt_ctx_test").to_string_lossy().into_owned());
        }
        ExpCtx::from_vec(v)
    }

    #[test]
    fn default_is_quick_scale() {
        let c = ctx(&[]);
        assert_eq!(c.scale, DataScale::Quick);
        assert_eq!(c.candidates, 60);
        assert_eq!(c.seeds, vec![1, 2, 3]);
        assert_eq!(c.population, 16);
        assert_eq!(c.apps.len(), 4);
    }

    #[test]
    fn full_and_paper_presets() {
        let f = ctx(&["--scale", "full"]);
        assert_eq!(f.scale, DataScale::Full);
        assert_eq!(f.candidates, 200);
        assert_eq!(f.population, 32);
        let p = ctx(&["--scale", "paper"]);
        assert_eq!(p.candidates, 400);
        assert_eq!(p.seeds.len(), 5);
        assert_eq!(p.population, 64);
        assert_eq!(p.sample, 32);
    }

    #[test]
    fn overrides_apply_after_preset() {
        let c = ctx(&["--scale", "full", "--candidates", "77", "--seeds", "2", "--pairs", "9"]);
        assert_eq!(c.candidates, 77);
        assert_eq!(c.seeds, vec![1, 2]);
        assert_eq!(c.pairs, 9);
    }

    #[test]
    fn apps_filter_parses_aliases() {
        let c = ctx(&["--apps", "cifar, uno"]);
        assert_eq!(c.apps, vec![AppKind::Cifar10, AppKind::Uno]);
    }

    #[test]
    fn run_names_are_distinct_across_settings() {
        let a = ctx(&["--scale", "quick"]);
        let b = ctx(&["--scale", "full"]);
        let name_a = a.run_name(AppKind::Uno, TransferScheme::Lcs, StrategyKind::Evolution, 1);
        let name_b = b.run_name(AppKind::Uno, TransferScheme::Lcs, StrategyKind::Evolution, 1);
        assert_ne!(name_a, name_b, "cache keys must separate data scales");
        assert!(name_a.contains("uno_lcs_evo_s1"));
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_rejected() {
        ctx(&["--apps", "imagenet"]);
    }
}
