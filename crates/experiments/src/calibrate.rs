//! Calibration of measured CPU costs to paper-scale GPU magnitudes.
//!
//! The Fig. 10/11 experiments ran on 32 A100 GPUs with full-size datasets;
//! this repository trains scaled models on CPU, so absolute times and
//! checkpoint sizes are ~100× smaller. The cluster simulation keeps the
//! *per-candidate distributions* measured here but rescales their means to
//! the paper's reported magnitudes:
//!
//! * mean one-epoch training time — NT3 is stated as ~6 s (Section VIII-E);
//!   the others are set proportionally to their dataset-size × model-cost
//!   products on an A100;
//! * mean checkpoint size — Table IV's mean parameter counts × 4 bytes
//!   (f32), which for NT3 reproduces the stated ~40 MB.
//!
//! These constants affect only `fig10`/`fig11`'s absolute axes, never who
//! wins or where the scaling knee appears — those come from the measured
//! distributions and the simulator.

use swt_data::AppKind;

/// Paper-scale mean one-epoch training seconds per candidate.
pub fn paper_train_secs(app: AppKind) -> f64 {
    match app {
        AppKind::Cifar10 => 45.0,
        AppKind::Mnist => 12.0,
        AppKind::Nt3 => 6.0, // stated in Section VIII-E
        AppKind::Uno => 20.0,
    }
}

/// Paper-scale mean checkpoint bytes (Table IV mean params × 4 B).
pub fn paper_checkpoint_bytes(app: AppKind) -> f64 {
    match app {
        AppKind::Cifar10 => 12.4e6 * 4.0,
        AppKind::Mnist => 2.8e6 * 4.0,
        AppKind::Nt3 => 11.6e6 * 4.0, // ~46 MB; the paper plots ~40 MB
        AppKind::Uno => 6.2e6 * 4.0,
    }
}

/// Multiplier mapping a measured mean to the paper-scale mean.
pub fn scale_factor(measured_mean: f64, paper_mean: f64) -> f64 {
    if measured_mean <= 0.0 {
        1.0
    } else {
        paper_mean / measured_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt3_matches_stated_numbers() {
        assert_eq!(paper_train_secs(AppKind::Nt3), 6.0);
        let mb = paper_checkpoint_bytes(AppKind::Nt3) / 1e6;
        assert!((40.0..50.0).contains(&mb), "NT3 checkpoint ~40 MB, got {mb}");
    }

    #[test]
    fn nt3_has_worst_size_to_time_ratio() {
        // The structural fact behind Fig. 10's NT3 overhead.
        let ratio = |app| paper_checkpoint_bytes(app) / paper_train_secs(app);
        for app in [AppKind::Cifar10, AppKind::Mnist, AppKind::Uno] {
            assert!(ratio(AppKind::Nt3) > ratio(app), "{app:?}");
        }
    }

    #[test]
    fn scale_factor_degenerate() {
        assert_eq!(scale_factor(0.0, 5.0), 1.0);
        assert_eq!(scale_factor(2.0, 6.0), 3.0);
    }
}
