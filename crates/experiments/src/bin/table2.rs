//! Table II: hardware configuration — here, the *simulated* cluster used by
//! the Fig. 10 scalability study, since no physical GPUs exist in this
//! environment (see DESIGN.md §1).

use swt_cluster::ClusterConfig;

fn main() {
    println!("== Table II — simulated hardware configuration ==\n");
    println!("Paper Node Type A: 4x AMD EPYC 7742, 1 TB RAM, 8x NVIDIA A100 40GB HBM2");
    println!("Paper Node Type B: Intel Xeon E5-2620 v3, 384 GB RAM, 2x Tesla K80\n");
    println!("This reproduction substitutes a discrete-event simulation of Node Type A");
    println!("clusters (Fig. 10) and real CPU training for everything else:\n");
    for nodes in [1usize, 2, 4] {
        println!("{}\n", ClusterConfig::node_type_a(nodes).describe());
    }
}
