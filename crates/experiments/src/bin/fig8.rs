//! Fig. 8: epochs to convergence (early stopping, patience 2, per-app
//! thresholds) and objective metrics for the top-10 models of every NAS run.
//!
//! Paper headline: LCS 1.5×, LP 1.4× geometric-mean speedup in epochs to
//! convergence versus the baseline, with better or comparable metrics.

use swt_experiments::fulltrain;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_stats::{geometric_mean, Summary};

fn main() {
    let ctx = ExpCtx::from_args();
    let rows = fulltrain::collect(&ctx);

    let mut fig_rows = Vec::new();
    let mut speedups_lp = Vec::new();
    let mut speedups_lcs = Vec::new();
    for &app in &ctx.apps {
        let mut mean_epochs = std::collections::HashMap::new();
        for scheme in ["Baseline", "LCS", "LP"] {
            let subset: Vec<&fulltrain::ModelRow> =
                rows.iter().filter(|r| r.app == app.name() && r.scheme == scheme).collect();
            if subset.is_empty() {
                continue;
            }
            let epochs: Vec<f64> = subset.iter().map(|r| r.epochs_early_stop as f64).collect();
            let es: Vec<f64> = subset.iter().map(|r| r.metric_early_stop).collect();
            let full: Vec<f64> = subset.iter().map(|r| r.metric_full).collect();
            let e = Summary::of(&epochs);
            mean_epochs.insert(scheme, e.mean);
            fig_rows.push(vec![
                app.name().to_string(),
                scheme.to_string(),
                format!("{:.2}", e.mean),
                Summary::of(&es).pm(3),
                Summary::of(&full).pm(3),
            ]);
        }
        if let (Some(&b), Some(&lp), Some(&lcs)) =
            (mean_epochs.get("Baseline"), mean_epochs.get("LP"), mean_epochs.get("LCS"))
        {
            if lp > 0.0 {
                speedups_lp.push(b / lp);
            }
            if lcs > 0.0 {
                speedups_lcs.push(b / lcs);
            }
        }
    }
    print_table(
        "Fig. 8 — epochs to convergence (early stopping) and objective metrics",
        &["App", "Scheme", "Mean epochs", "Metric (early stop)", "Metric (20 epochs)"],
        &fig_rows,
    );
    if !speedups_lp.is_empty() {
        println!(
            "\nGeometric-mean full-training speedup vs baseline:  LP {:.2}x   LCS {:.2}x",
            geometric_mean(&speedups_lp),
            geometric_mean(&speedups_lcs)
        );
        println!("Paper reference: LP 1.4x, LCS 1.5x");
    }
    write_csv(
        &ctx.out.join("fig8_summary.csv"),
        &["app", "scheme", "mean_epochs", "metric_early_stop", "metric_full"],
        &fig_rows,
    );
}
