//! Extension experiment: asynchronous checkpointing (the paper's stated
//! future work, Section X).
//!
//! Two views of what write-behind checkpointing buys:
//!
//! 1. A *real* NAS run with the synchronous `DirStore` vs the same run with
//!    `AsyncStore` wrapping it (checkpoint writes leave the evaluator's
//!    critical path).
//! 2. The Fig. 10 simulation of the NT3 profile with write costs removed —
//!    the upper bound async checkpointing could recover at cluster scale.

use std::sync::Arc;
use swt_checkpoint::{AsyncStore, CheckpointStore, DirStore};
use swt_cluster::{simulate, ClusterConfig, TaskCost};
use swt_core::TransferScheme;
use swt_data::AppKind;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::{run_nas, NasConfig, StrategyKind};
use swt_space::SearchSpace;

fn main() {
    let ctx = ExpCtx::from_args();
    let app = AppKind::Nt3; // the paper's overhead-critical application
    let problem = ctx.problem(app);
    let space = Arc::new(SearchSpace::for_app(app));

    // Real runs: sync vs async store, same seed and budget.
    let mut rows = Vec::new();
    for (label, wrap_async) in [("sync DirStore", false), ("AsyncStore", true)] {
        let dir = ctx
            .out
            .join("ckpts")
            .join(format!("ext_async_{}", if wrap_async { "async" } else { "sync" }));
        let _ = std::fs::remove_dir_all(&dir);
        let base: Arc<dyn CheckpointStore> = Arc::new(DirStore::new(&dir).expect("store dir"));
        let store: Arc<dyn CheckpointStore> =
            if wrap_async { Arc::new(AsyncStore::new(base)) } else { base };
        let cfg = NasConfig {
            strategy: StrategyKind::Evolution,
            population_size: ctx.population,
            sample_size: ctx.sample,
            ..NasConfig::quick(TransferScheme::Lcs, ctx.candidates, ctx.workers, 1)
        };
        let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg);
        let save_secs: f64 = trace.events.iter().map(|e| e.save_secs).sum();
        rows.push(vec![
            label.to_string(),
            format!("{:.2}s", trace.wall_secs),
            format!("{:.3}s", save_secs),
            format!("{:.4}s", save_secs / trace.events.len() as f64),
        ]);
    }
    print_table(
        &format!("Async checkpointing — real {} run ({} candidates)", app.name(), ctx.candidates),
        &["Store", "Wall time", "Total save time on critical path", "Per candidate"],
        &rows,
    );

    // Simulated upper bound at cluster scale (NT3 profile from Fig. 10).
    let mk_tasks = |writes: bool| -> Vec<TaskCost> {
        (0..400)
            .map(|i| TaskCost {
                train_secs: 6.0,
                read_bytes: if i > 50 { 46_000_000 } else { 0 },
                transfer_secs: if i > 50 { 4.0 } else { 0.0 }, // object-store rehydration
                write_bytes: if writes { 46_000_000 } else { 0 },
            })
            .collect()
    };
    let mut sim_rows = Vec::new();
    for nodes in [1usize, 2, 4] {
        let cfg = ClusterConfig::node_type_a(nodes);
        let with_writes = simulate(&cfg, &mk_tasks(true)).makespan;
        let without = simulate(&cfg, &mk_tasks(false)).makespan;
        sim_rows.push(vec![
            (nodes * 8).to_string(),
            format!("{:.0}s", with_writes),
            format!("{:.0}s", without),
            format!("{:.1}%", 100.0 * (1.0 - without / with_writes)),
        ]);
    }
    print_table(
        "Simulated NT3 profile at scale: sync writes vs write-behind (upper bound)",
        &["GPUs", "Sync writes", "Async (writes off critical path)", "Saved"],
        &sim_rows,
    );
    write_csv(
        &ctx.out.join("ext_async.csv"),
        &["gpus", "sync_makespan", "async_makespan", "saved_pct"],
        &sim_rows,
    );
}
