//! Assemble EXPERIMENTS.md from the recorded experiment logs.
//!
//! Each experiment binary prints its headline table to stdout (captured in
//! `results/log_<bin>.log` by `run_recorded.sh`). This tool splices those
//! tables into EXPERIMENTS.md wherever a
//! `(to be filled from results/<name>.csv)` placeholder (or a previously
//! spliced table) sits inside a fenced block, so paper-vs-measured stays in
//! sync with the latest recorded run.

use std::path::Path;

/// `(placeholder csv name, log file stem)`.
const MAPPING: &[(&str, &str)] = &[
    ("table1", "table1"),
    ("fig2", "fig2"),
    ("fig4", "fig4"),
    ("fig5", "fig5"),
    ("fig7_summary", "fig7"),
    ("fig8_summary", "fig8"),
    ("table3", "table3"),
    ("table4", "table4"),
    ("fig9", "fig9"),
    ("fig10", "fig10"),
    ("fig11", "fig11"),
];

/// Extract the first `== ... ==` table (plus any trailing summary lines
/// before the `[csv ]` marker) from a log.
fn extract_table(log: &str) -> Option<String> {
    let start = log.find("\n== ")?;
    let body = &log[start + 1..];
    let end =
        body.find("\n[csv").or_else(|| body.find("\n\nPaper reference")).unwrap_or(body.len());
    let mut table = body[..end].trim_end().to_string();
    // Keep the geomean speedup line of fig8, which follows the table.
    if let Some(extra_start) = body.find("Geometric-mean") {
        let extra = &body[extra_start..];
        let extra_end = extra.find('\n').unwrap_or(extra.len());
        table.push_str("\n\n");
        table.push_str(&extra[..extra_end]);
    }
    Some(table)
}

fn main() {
    let out_dir = Path::new("results");
    let md_path = Path::new("EXPERIMENTS.md");
    let mut md = std::fs::read_to_string(md_path).expect("read EXPERIMENTS.md");
    let mut updated = 0;
    for (csv_name, log_stem) in MAPPING {
        let log_path = out_dir.join(format!("log_{log_stem}.log"));
        let Ok(log) = std::fs::read_to_string(&log_path) else {
            eprintln!("[skip ] {} (no {})", csv_name, log_path.display());
            continue;
        };
        let Some(table) = extract_table(&log) else {
            eprintln!("[skip ] {csv_name} (no table in log)");
            continue;
        };
        // The placeholder fenced block either still holds the marker text or
        // a previously spliced table starting with "== ".
        let marker = format!("(to be filled from results/{csv_name}.csv)");
        if let Some(pos) = md.find(&marker) {
            md.replace_range(pos..pos + marker.len(), &table);
            updated += 1;
            continue;
        }
        // Re-splice: find the fence that contains a table with this csv's
        // title by locating the old table's first line.
        if let Some(title_line) = table.lines().next() {
            if let Some(pos) = md.find(title_line) {
                // Replace up to the closing fence.
                if let Some(end_rel) = md[pos..].find("\n```") {
                    md.replace_range(pos..pos + end_rel, &table);
                    updated += 1;
                    continue;
                }
            }
        }
        eprintln!("[skip ] {csv_name} (no insertion point)");
    }
    std::fs::write(md_path, md).expect("write EXPERIMENTS.md");
    println!("EXPERIMENTS.md: {updated} sections updated");
}
