//! Fig. 10: scalability of the candidate-estimation phase on 8/16/32 GPUs.
//!
//! Per-task cost *distributions* are taken from this repository's measured
//! traces (train seconds, checkpoint bytes, transfer seconds), rescaled to
//! paper-magnitude means (`calibrate` module) and executed on the
//! discrete-event cluster simulator (DESIGN.md §1). For NT3 the paper
//! reports ~4 s average checkpoint loads caused by Ray object-store churn
//! against ~6 s trainings; we model that rehydration cost explicitly,
//! calibrated from the paper's own measurement.
//!
//! Expected shape: near-linear scaling with a small constant overhead for
//! CIFAR-10/MNIST/Uno; NT3 sublinear from 16 to 32 GPUs with visible
//! checkpointing overhead for the transfer schemes.

use swt_cluster::{simulate, ClusterConfig, TaskCost};
use swt_core::TransferScheme;
use swt_data::AppKind;
use swt_experiments::{calibrate, print_table, write_csv, ExpCtx};
use swt_nas::StrategyKind;

/// Ray object-store rehydration rate for short-lived evaluators, calibrated
/// so a paper-sized NT3 checkpoint (~40 MB) costs ~4 s (Section VIII-E).
const NT3_REHYDRATE_BYTES_PER_SEC: f64 = 10.0e6;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &app in &ctx.apps {
        for scheme in TransferScheme::all() {
            // Measured per-candidate cost distributions from a real run.
            let (trace, _store) =
                ctx.run_or_load(app, scheme, StrategyKind::Evolution, ctx.seeds[0]);
            let mean = |xs: &mut dyn Iterator<Item = f64>| -> f64 {
                let v: Vec<f64> = xs.collect();
                v.iter().sum::<f64>() / v.len().max(1) as f64
            };
            let train_scale = calibrate::scale_factor(
                mean(&mut trace.events.iter().map(|e| e.train_secs)),
                calibrate::paper_train_secs(app),
            );
            let bytes_scale = calibrate::scale_factor(
                mean(&mut trace.events.iter().map(|e| e.checkpoint_bytes as f64)),
                calibrate::paper_checkpoint_bytes(app),
            );
            // The paper estimates 400 candidates per run; bootstrap-resample
            // the measured distribution up to that count so scaling is not
            // distorted by wave quantisation at 32 GPUs.
            let mut rng = swt_tensor::Rng::seed(0x00F1_6010);
            let events: Vec<&swt_nas::TraceEvent> =
                (0..400).map(|_| &trace.events[rng.below(trace.events.len())]).collect();
            let tasks: Vec<TaskCost> = events
                .iter()
                .map(|e| {
                    let ckpt_bytes = (e.checkpoint_bytes as f64 * bytes_scale) as u64;
                    let read_bytes = if e.transfer_tensors > 0 { ckpt_bytes } else { 0 };
                    // Matching/copy cost: the paper measures "at most 150 ms";
                    // keep our measured value, floor-scaled to that order.
                    let mut transfer_secs =
                        e.transfer_secs.max(if read_bytes > 0 { 0.05 } else { 0.0 });
                    if app == AppKind::Nt3 && read_bytes > 0 {
                        transfer_secs += read_bytes as f64 / NT3_REHYDRATE_BYTES_PER_SEC;
                    }
                    TaskCost {
                        train_secs: e.train_secs * train_scale,
                        read_bytes,
                        transfer_secs,
                        write_bytes: ckpt_bytes,
                    }
                })
                .collect();
            let mut times = Vec::new();
            for nodes in [1usize, 2, 4] {
                let report = simulate(&ClusterConfig::node_type_a(nodes), &tasks);
                times.push(report.makespan);
                csv_rows.push(vec![
                    app.name().to_string(),
                    scheme.name().to_string(),
                    (nodes * 8).to_string(),
                    format!("{:.3}", report.makespan),
                    format!("{:.3}", report.utilization),
                    format!("{:.3}", report.io_secs),
                ]);
            }
            rows.push(vec![
                app.name().to_string(),
                scheme.name().to_string(),
                format!("{:.0}s", times[0]),
                format!("{:.0}s", times[1]),
                format!("{:.0}s", times[2]),
                format!("{:.2}x", times[0] / times[1]),
                format!("{:.2}x", times[1] / times[2]),
            ]);
        }
    }
    print_table(
        "Fig. 10 — simulated candidate-estimation time on 8/16/32 GPUs (calibrated)",
        &["App", "Scheme", "8 GPUs", "16 GPUs", "32 GPUs", "8->16", "16->32"],
        &rows,
    );
    write_csv(
        &ctx.out.join("fig10.csv"),
        &["app", "scheme", "gpus", "makespan_secs", "utilization", "io_secs"],
        &csv_rows,
    );
    println!("\nPaper reference: linear scaling for CIFAR-10/MNIST/Uno with constant overhead;");
    println!("NT3 sublinear 16->32 with notable checkpointing overhead vs its ~6 s trainings.");
}
