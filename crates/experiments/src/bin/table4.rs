//! Table IV: model complexity (parameter counts) of the top-scored models.
//!
//! Paper finding: the schemes produce a similar range of parameter counts;
//! NT3-with-LCS and Uno-with-LP skew *smaller* than the baseline — transfer
//! can reduce complexity without hurting the objective.

use swt_experiments::fulltrain;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_stats::Summary;

fn main() {
    let ctx = ExpCtx::from_args();
    let rows = fulltrain::collect(&ctx);
    let mut out_rows = Vec::new();
    for &app in &ctx.apps {
        for scheme in ["Baseline", "LCS", "LP"] {
            let params: Vec<f64> = rows
                .iter()
                .filter(|r| r.app == app.name() && r.scheme == scheme)
                .map(|r| r.params as f64 / 1e6)
                .collect();
            if params.is_empty() {
                continue;
            }
            let s = Summary::of(&params);
            out_rows.push(vec![
                app.name().to_string(),
                scheme.to_string(),
                format!("{:.3} ± {:.3}", s.mean, s.std_dev),
                format!("{:.3}", s.max),
                format!("{:.3}", s.min),
            ]);
        }
    }
    print_table(
        "Table IV — model complexity of top-scored models (params / 1e6)",
        &["App", "Scheme", "Mean", "Max", "Min"],
        &out_rows,
    );
    write_csv(
        &ctx.out.join("table4.csv"),
        &["app", "scheme", "mean_mparams", "max_mparams", "min_mparams"],
        &out_rows,
    );
    println!("\nPaper reference: similar ranges across schemes; NT3+LCS and Uno+LP smaller than baseline");
}
