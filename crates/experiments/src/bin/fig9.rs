//! Fig. 9: Kendall's tau between one-epoch estimated scores and
//! fully-trained objective metrics, per scheme.
//!
//! A sample of the estimation-phase candidates of each run is trained to
//! convergence; tau measures how faithfully the estimates rank the
//! candidates. Paper finding: tau improves significantly under LP/LCS for
//! CIFAR-10, NT3 and Uno (LCS ≥ LP), and is unchanged on MNIST — this is
//! *why* weight transfer discovers better models (Section VIII-D).

use std::sync::Arc;
use swt_core::TransferScheme;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::{full_train_sample, StrategyKind};
use swt_space::SearchSpace;
use swt_stats::{kendall_tau, Summary};

const MAX_EPOCHS: usize = 20;

fn main() {
    let ctx = ExpCtx::from_args();
    // Paper: 100 of 400; scaled proportionally to the candidate budget and
    // capped — every sampled candidate costs a full training run.
    let sample_n = (ctx.candidates / 4).clamp(10, 34);
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let problem = ctx.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        for scheme in TransferScheme::all() {
            let mut taus = Vec::new();
            for &seed in &ctx.seeds {
                let (trace, store) = ctx.run_or_load(app, scheme, StrategyKind::Evolution, seed);
                eprintln!(
                    "[tau  ] {} {} seed {seed}: fully training {sample_n} sampled candidates",
                    app.name(),
                    scheme.name()
                );
                let pairs = full_train_sample(
                    &problem,
                    Arc::clone(&space),
                    store,
                    &trace,
                    sample_n,
                    MAX_EPOCHS,
                    seed ^ 0xF19,
                );
                let (x, y): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
                taus.push(kendall_tau(&x, &y));
            }
            let s = Summary::of(&taus);
            rows.push(vec![
                app.name().to_string(),
                scheme.name().to_string(),
                format!("{:.3}", s.mean),
                format!("{:.3}", s.std_dev),
            ]);
        }
    }
    print_table(
        "Fig. 9 — Kendall's tau: estimated score vs fully-trained metric",
        &["App", "Scheme", "Mean tau", "Std"],
        &rows,
    );
    write_csv(&ctx.out.join("fig9.csv"), &["app", "scheme", "mean_tau", "std_tau"], &rows);
    println!("\nPaper reference: tau significantly higher for LP/LCS on CIFAR-10/NT3/Uno;");
    println!("LCS > LP on those apps; MNIST unchanged.");
}
