//! Fig. 4: scope and effectiveness of LP and LCS for *random* pairs of
//! provider and receiver models.
//!
//! For each sampled pair the receiver is trained one epoch from (a) random
//! init and (b) LP/LCS-transferred init; a transferable pair is *positive*
//! when (b) beats (a). Paper: CIFAR-10/Uno ~100% transferable under LCS,
//! MNIST/NT3 ≥ 42%; random providers are *not* reliably beneficial (CIFAR-10
//! has more negative than positive pairs).

use std::sync::Arc;
use swt_core::TransferScheme;
use swt_experiments::{pct, print_table, write_csv, ExpCtx};
use swt_nas::{run_pair_experiment, PairSummary, StrategyKind};
use swt_space::SearchSpace;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let (trace, store) =
            ctx.run_or_load(app, TransferScheme::Baseline, StrategyKind::Random, 101);
        let problem = ctx.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        eprintln!("[pairs] {}: training {} receiver pairs x3", app.name(), ctx.pairs);
        let outcomes = run_pair_experiment(&problem, space, store, &trace, ctx.pairs, 404, true);
        let s = PairSummary::of(&outcomes);
        for (matcher, transferable, positive, negative) in [
            ("LCS", s.lcs_transferable, s.lcs_positive, s.lcs_negative),
            ("LP", s.lp_transferable, s.lp_positive, s.lp_negative),
        ] {
            let pos_rate = if transferable > 0.0 { positive / transferable } else { 0.0 };
            rows.push(vec![
                app.name().to_string(),
                matcher.to_string(),
                pct(transferable),
                pct(positive),
                pct(negative),
                pct(pos_rate),
            ]);
        }
    }
    print_table(
        "Fig. 4 — scope and effectiveness of LP/LCS on random pairs",
        &["App", "Matcher", "Transferable", "Positive", "Negative", "Positive|Transferable"],
        &rows,
    );
    write_csv(
        &ctx.out.join("fig4.csv"),
        &[
            "app",
            "matcher",
            "transferable_pct",
            "positive_pct",
            "negative_pct",
            "positive_rate_pct",
        ],
        &rows,
    );
    println!("\nPaper reference: LCS transferable ~100% (CIFAR-10, Uno), >=42% (MNIST, NT3);");
    println!("positive|transferable: MNIST ~65%, NT3/Uno 53-57%, CIFAR-10 < 50% (random provider harmful)");
}
