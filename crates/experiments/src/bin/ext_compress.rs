//! Extension experiment: quantized (8-bit) provider checkpoints.
//!
//! The paper's related work positions lossy checkpoint compression (DeepSZ,
//! Check-N-Run) as complementary to weight transfer. This experiment
//! quantifies the interaction on real candidates: providers are stored with
//! 8-bit linear quantization (4× smaller), and receivers initialised from
//! the *lossy* weights are compared against receivers initialised from the
//! exact ones — if the positivity of transfer survives, the two techniques
//! compose and NT3's Fig. 10 overhead can be quartered.

use std::sync::Arc;
use swt_checkpoint::{CheckpointStore, MemStore, QuantizedStore};
use swt_core::{apply_transfer, Matcher, ShapeSeq, TransferPlan, TransferScheme};
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::StrategyKind;
use swt_nn::{AdamConfig, Model, TrainConfig, Trainer};
use swt_space::SearchSpace;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let (trace, store) =
            ctx.run_or_load(app, TransferScheme::Baseline, StrategyKind::Random, 101);
        let problem = ctx.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        let trainer = Trainer::new(problem.loss, problem.metric);

        let n_pairs = (ctx.pairs / 4).max(20);
        let mut rng = swt_tensor::Rng::seed(77);
        let mut exact_better = 0usize;
        let mut lossy_positive = 0usize;
        let mut exact_positive = 0usize;
        let mut used = 0usize;
        let mut raw_bytes = 0u64;
        let mut q_bytes = 0u64;
        for k in 0..n_pairs {
            let provider_ev = &trace.events[rng.below(trace.events.len())];
            let receiver_arch = space.mutate(&provider_ev.arch, &mut rng);
            let receiver_spec = space.materialize(&receiver_arch).unwrap();
            let provider_ckpt = store.load(&format!("c{}", provider_ev.id)).unwrap();

            // Round-trip the provider through the quantizer.
            let qstore = QuantizedStore::new(Box::new(MemStore::new()));
            q_bytes += qstore.save("p", &provider_ckpt).unwrap();
            raw_bytes += provider_ckpt.iter().map(|(_, t)| 4 * t.numel() as u64).sum::<u64>();
            let lossy_ckpt = qstore.load("p").unwrap();

            let provider_seq = ShapeSeq::from_params(
                provider_ckpt
                    .iter()
                    .filter(|(n, _)| !n.ends_with("running_mean") && !n.ends_with("running_var"))
                    .map(|(n, t)| (n.clone(), t.shape().clone()))
                    .collect(),
            );
            let receiver_seq = ShapeSeq::of(&receiver_spec).unwrap();
            let plan = TransferPlan::build(Matcher::Lcs, &provider_seq, &receiver_seq);
            if plan.is_empty() {
                continue;
            }
            used += 1;
            let seed = 9000 + k as u64;
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: problem.batch_size,
                adam: AdamConfig { lr: problem.lr, ..Default::default() },
                shuffle_seed: seed,
                early_stop: None,
                convergence: None,
            };
            let score_of = |ckpt: Option<&[(String, swt_tensor::Tensor)]>| -> f64 {
                let mut model = Model::build(&receiver_spec, seed).unwrap();
                if let Some(ckpt) = ckpt {
                    apply_transfer(&plan, ckpt, &mut model);
                }
                trainer.fit(&mut model, &problem.train, &problem.val, &cfg).final_metric
            };
            let random = score_of(None);
            let exact = score_of(Some(&provider_ckpt));
            let lossy = score_of(Some(&lossy_ckpt));
            if exact > random {
                exact_positive += 1;
            }
            if lossy > random {
                lossy_positive += 1;
            }
            if exact > lossy {
                exact_better += 1;
            }
        }
        rows.push(vec![
            app.name().to_string(),
            used.to_string(),
            format!("{:.1}%", 100.0 * exact_positive as f64 / used.max(1) as f64),
            format!("{:.1}%", 100.0 * lossy_positive as f64 / used.max(1) as f64),
            format!("{:.1}%", 100.0 * exact_better as f64 / used.max(1) as f64),
            format!("{:.2}x", raw_bytes as f64 / q_bytes.max(1) as f64),
        ]);
    }
    print_table(
        "Extension — 8-bit quantized provider checkpoints (d=1 pairs, LCS)",
        &[
            "App",
            "Pairs",
            "Exact positive",
            "Quantized positive",
            "Exact beats quantized",
            "Size reduction",
        ],
        &rows,
    );
    write_csv(
        &ctx.out.join("ext_compress.csv"),
        &["app", "pairs", "exact_positive", "lossy_positive", "exact_beats_lossy", "reduction"],
        &rows,
    );
    println!("\nIf 'quantized positive' tracks 'exact positive', compression and weight transfer");
    println!("compose — the paper's envisioned combination (Sections IX/X).");
}
