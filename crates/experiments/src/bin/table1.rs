//! Table I: summary of evaluated applications and their search spaces.
//!
//! Paper values (for reference): CIFAR-10 2558T models / 21 VNs, MNIST 120M
//! / 11, NT3 3M / 8, Uno 302T / 13. Our scaled spaces keep the same node
//! kinds and orders; sizes are computed, not asserted.

use swt_data::{AppKind, DataScale};
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_space::SearchSpace;

fn human(size: f64) -> String {
    const UNITS: [(&str, f64); 4] = [("T", 1e12), ("B", 1e9), ("M", 1e6), ("K", 1e3)];
    for (suffix, scale) in UNITS {
        if size >= scale {
            return format!("{:.1}{suffix}", size / scale);
        }
    }
    format!("{size:.0}")
}

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for app in AppKind::all() {
        let space = SearchSpace::for_app(app);
        let (train_n, val_n) = app.sizes(DataScale::Full);
        let dims: Vec<String> = app
            .input_shapes()
            .iter()
            .map(|s| s.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x"))
            .collect();
        rows.push(vec![
            app.name().to_string(),
            format!("{}x({})", train_n, dims.join(" + ")),
            format!("{}x(...)", val_n),
            human(space.size()),
            space.num_nodes().to_string(),
            match app.loss() {
                swt_nn::Loss::CategoricalCrossEntropy => "CE".to_string(),
                swt_nn::Loss::MeanAbsoluteError => "MAE".to_string(),
            },
            match app.metric() {
                swt_nn::Metric::Accuracy => "ACC".to_string(),
                swt_nn::Metric::RSquared => "R2".to_string(),
            },
        ]);
    }
    print_table(
        "Table I — applications and search spaces (scaled reproduction)",
        &["App", "Training", "Validation", "Space size", "#VNs", "Loss", "Obj."],
        &rows,
    );
    write_csv(
        &ctx.out.join("table1.csv"),
        &["app", "train", "val", "space_size", "vns", "loss", "objective"],
        &rows,
    );
    println!("\nPaper reference: CIFAR-10 2558T/21VN, MNIST 120M/11VN, NT3 3M/8VN, Uno 302T/13VN");
}
