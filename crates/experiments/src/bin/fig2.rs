//! Fig. 2: fraction of candidate pairs that are *shareable* (have at least
//! one tensor of identical shape).
//!
//! Paper: CIFAR-10 and Uno ~100%, MNIST 54%, NT3 40%, over 10,000 pairs
//! sampled from random-search traces of ≥ 672 candidates per application.

use std::sync::Arc;
use swt_core::TransferScheme;
use swt_experiments::{pct, print_table, write_csv, ExpCtx};
use swt_nas::{run_pair_experiment, PairSummary, StrategyKind};
use swt_space::SearchSpace;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        // The analysis trace: random search, baseline init (Section III).
        let (trace, store) =
            ctx.run_or_load(app, TransferScheme::Baseline, StrategyKind::Random, 101);
        let problem = ctx.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        // Structural-only pass: 10x the trained-pair budget is still cheap.
        let outcomes =
            run_pair_experiment(&problem, space, store, &trace, ctx.pairs * 10, 2025, false);
        let summary = PairSummary::of(&outcomes);
        rows.push(vec![app.name().to_string(), summary.pairs.to_string(), pct(summary.shareable)]);
    }
    print_table("Fig. 2 — shareable pairs", &["App", "Pairs", "Shareable"], &rows);
    write_csv(&ctx.out.join("fig2.csv"), &["app", "pairs", "shareable_pct"], &rows);
    println!("\nPaper reference: CIFAR-10 ~100%, Uno ~100%, MNIST 54%, NT3 40%");
}
