//! Fig. 11: average checkpoint sizes of the evaluated applications.
//!
//! Paper: NT3's checkpoints are large (~40 MB) relative to its ~6 s training
//! time, which is the root cause of its scalability overhead. Our scaled
//! models are smaller but the cross-application *ordering* is the result to
//! reproduce.

use swt_core::TransferScheme;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::StrategyKind;
use swt_stats::Summary;

fn human_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let (trace, _store) =
            ctx.run_or_load(app, TransferScheme::Lcs, StrategyKind::Evolution, ctx.seeds[0]);
        let sizes: Vec<f64> = trace.events.iter().map(|e| e.checkpoint_bytes as f64).collect();
        let s = Summary::of(&sizes);
        let train: Vec<f64> = trace.events.iter().map(|e| e.train_secs).collect();
        let t = Summary::of(&train);
        rows.push(vec![
            app.name().to_string(),
            human_bytes(s.mean),
            human_bytes(s.max),
            human_bytes(s.min),
            format!("{:.2}s", t.mean),
            format!("{:.1}", s.mean / 1e3 / t.mean.max(1e-9)),
            human_bytes(swt_experiments::calibrate::paper_checkpoint_bytes(app)),
        ]);
    }
    print_table(
        "Fig. 11 — average checkpoint sizes (and size-to-training-time ratio)",
        &[
            "App",
            "Mean",
            "Max",
            "Min",
            "Mean train",
            "KB per train-sec",
            "Calibrated (paper-scale)",
        ],
        &rows,
    );
    write_csv(
        &ctx.out.join("fig11.csv"),
        &["app", "mean", "max", "min", "mean_train_secs", "kb_per_train_sec", "calibrated"],
        &rows,
    );
    println!("\nPaper reference: NT3 ~40 MB checkpoints vs ~6 s training — the worst");
    println!("size-to-training-time ratio, explaining its Fig. 10 overhead.");
}
