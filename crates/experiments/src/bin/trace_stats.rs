//! Deep-dive statistics over recorded NAS traces: lineage structure,
//! transfer volume and per-scheme score dynamics. Useful when interpreting
//! the Fig. 7/8 results — the lineage-depth column quantifies how much
//! accumulated training the transfer schemes inject.

use swt_core::TransferScheme;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::StrategyKind;
use swt_stats::Summary;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        for scheme in TransferScheme::all() {
            let mut depth_means = Vec::new();
            let mut max_depths = Vec::new();
            let mut transferred_frac = Vec::new();
            let mut bytes_per_child = Vec::new();
            let mut best_scores = Vec::new();
            for &seed in &ctx.seeds {
                let (trace, _store) = ctx.run_or_load(app, scheme, StrategyKind::Evolution, seed);
                let depths = trace.lineage_depths();
                depth_means.push(trace.mean_lineage_depth());
                max_depths.push(depths.values().copied().max().unwrap_or(0) as f64);
                let children = trace.events.iter().filter(|e| e.parent.is_some()).count();
                let transferred = trace.events.iter().filter(|e| e.transfer_tensors > 0).count();
                transferred_frac.push(if children > 0 {
                    transferred as f64 / children as f64
                } else {
                    0.0
                });
                let total_bytes: usize = trace.events.iter().map(|e| e.transfer_bytes).sum();
                bytes_per_child.push(if transferred > 0 {
                    total_bytes as f64 / transferred as f64
                } else {
                    0.0
                });
                best_scores.push(trace.top_k(1).first().map(|e| e.score).unwrap_or(f64::NAN));
            }
            rows.push(vec![
                app.name().to_string(),
                scheme.name().to_string(),
                format!("{:.2}", Summary::of(&depth_means).mean),
                format!("{:.0}", Summary::of(&max_depths).max),
                format!("{:.0}%", 100.0 * Summary::of(&transferred_frac).mean),
                format!("{:.0} KB", Summary::of(&bytes_per_child).mean / 1e3),
                Summary::of(&best_scores).pm(3),
            ]);
        }
    }
    print_table(
        "Trace deep-dive — lineage and transfer volume per scheme",
        &[
            "App",
            "Scheme",
            "Mean lineage depth",
            "Max depth",
            "Children transferred",
            "Bytes/child",
            "Best score",
        ],
        &rows,
    );
    write_csv(
        &ctx.out.join("trace_stats.csv"),
        &[
            "app",
            "scheme",
            "mean_lineage_depth",
            "max_depth",
            "children_transferred_pct",
            "bytes_per_child",
            "best_score",
        ],
        &rows,
    );
}
