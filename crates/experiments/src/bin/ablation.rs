//! Ablation: how much of the benefit comes from *which provider* is chosen?
//!
//! The paper's design (Section V) integrates transfer with evolution so the
//! mutation parent (d = 1) is always the provider. This ablation holds the
//! search strategy fixed (regularized evolution, LCS matching) and varies
//! only the provider policy:
//!
//! * `parent`  — the paper's Algorithm 1;
//! * `nearest` — explicit minimum-distance scan over the population;
//! * `random`  — a random population member (Figs. 4/5's strawman);
//! * `none`    — evolution without any transfer (the baseline's init with
//!   the same candidate stream).
//!
//! Reported: mean estimate over the final third of each run (as in Fig. 7)
//! and the transfer volume. Expectation: parent ≈ nearest > random > none.

use std::sync::Arc;
use swt_checkpoint::{CheckpointStore, MemStore};
use swt_core::TransferScheme;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::{run_nas, NasConfig, ProviderPolicy, StrategyKind};
use swt_space::SearchSpace;
use swt_stats::Summary;

fn main() {
    let ctx = ExpCtx::from_args();
    let policies = [
        ("parent", ProviderPolicy::Parent),
        ("nearest", ProviderPolicy::Nearest),
        ("random", ProviderPolicy::Random),
        ("none", ProviderPolicy::None),
    ];
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let problem = ctx.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        for (name, policy) in policies {
            let mut tails = Vec::new();
            let mut transferred = 0usize;
            let mut total = 0usize;
            for &seed in &ctx.seeds {
                let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
                let cfg = NasConfig {
                    provider: policy,
                    strategy: StrategyKind::Evolution,
                    population_size: ctx.population,
                    sample_size: ctx.sample,
                    ..NasConfig::quick(TransferScheme::Lcs, ctx.candidates, ctx.workers, seed)
                };
                let trace = run_nas(Arc::clone(&problem), Arc::clone(&space), store, &cfg);
                let events = trace.by_completion();
                let tail = &events[events.len() * 2 / 3..];
                tails.extend(tail.iter().map(|e| e.score));
                transferred += trace.events.iter().filter(|e| e.transfer_tensors > 0).count();
                total += trace.events.len();
            }
            let s = Summary::of(&tails);
            rows.push(vec![
                app.name().to_string(),
                name.to_string(),
                format!("{:.4}", s.mean),
                format!("{:.4}", s.ci95),
                format!("{:.1}%", 100.0 * transferred as f64 / total as f64),
            ]);
        }
    }
    print_table(
        "Ablation — provider-selection policy (evolution + LCS held fixed)",
        &["App", "Provider", "Tail mean score", "CI95", "Candidates transferred"],
        &rows,
    );
    write_csv(
        &ctx.out.join("ablation_provider.csv"),
        &["app", "provider", "tail_mean", "ci95", "transferred_pct"],
        &rows,
    );
    println!("\nDesign-choice check: parent/nearest should dominate random, random >= none on");
    println!(
        "transfer-friendly apps; parent achieves this with zero selection cost (Section V-B)."
    );
}
