//! Table III: objective metrics (mean ± std) of the top-scored models after
//! full training, per scheme, fully-trained and early-stopped.
//!
//! Paper reference values (fully trained): CIFAR-10 baseline 0.799 vs LCS/LP
//! 0.823; NT3 baseline 0.976 vs LCS 0.988 / LP 0.987; Uno baseline 0.582 vs
//! LCS 0.594 / LP 0.609; MNIST all 0.993.

use swt_experiments::fulltrain;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_stats::Summary;

fn main() {
    let ctx = ExpCtx::from_args();
    let rows = fulltrain::collect(&ctx);
    let mut out_rows = Vec::new();
    for &app in &ctx.apps {
        for scheme in ["Baseline", "LCS", "LP"] {
            let subset: Vec<&fulltrain::ModelRow> =
                rows.iter().filter(|r| r.app == app.name() && r.scheme == scheme).collect();
            if subset.is_empty() {
                continue;
            }
            let full: Vec<f64> = subset.iter().map(|r| r.metric_full).collect();
            let es: Vec<f64> = subset.iter().map(|r| r.metric_early_stop).collect();
            out_rows.push(vec![
                app.name().to_string(),
                scheme.to_string(),
                subset.len().to_string(),
                Summary::of(&full).pm(3),
                Summary::of(&es).pm(3),
            ]);
        }
    }
    print_table(
        "Table III — top-scored models after full training (mean ± std)",
        &["App", "Scheme", "Models", "Fully trained", "Early stopped"],
        &out_rows,
    );
    write_csv(
        &ctx.out.join("table3.csv"),
        &["app", "scheme", "models", "fully_trained", "early_stopped"],
        &out_rows,
    );
    println!("\nPaper reference (fully trained): CIFAR-10 0.799/0.823/0.823, MNIST 0.993 all,");
    println!("NT3 0.976/0.988/0.987, Uno 0.582/0.594/0.609 (Baseline/LCS/LP)");
}
