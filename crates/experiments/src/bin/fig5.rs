//! Fig. 5: effect of the architecture distance `d` between provider and
//! receiver on transferability and positivity.
//!
//! Paper finding: as `d` grows, both the transferable fraction and the
//! positive fraction shrink; for small `d` (< 3) positive pairs clearly
//! dominate negative ones — the basis of the provider-selection rule.

use std::sync::Arc;
use swt_core::TransferScheme;
use swt_experiments::{pct, print_table, write_csv, ExpCtx};
use swt_nas::{run_distance_experiment, PairSummary, StrategyKind};
use swt_space::SearchSpace;

const MAX_D: usize = 6;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let (trace, store) =
            ctx.run_or_load(app, TransferScheme::Baseline, StrategyKind::Random, 101);
        let problem = ctx.problem(app);
        let space = Arc::new(SearchSpace::for_app(app));
        let per_d = (ctx.pairs / MAX_D).max(10);
        eprintln!("[pairs] {}: training {} pairs per distance bin x3", app.name(), per_d);
        let outcomes =
            run_distance_experiment(&problem, space, store, &trace, per_d, MAX_D, 505, true);
        for (d, s) in PairSummary::by_distance(&outcomes, MAX_D) {
            if s.pairs == 0 {
                continue;
            }
            let label = if d == MAX_D { format!("{d}+") } else { d.to_string() };
            rows.push(vec![
                app.name().to_string(),
                label,
                s.pairs.to_string(),
                pct(s.lcs_transferable),
                pct(s.lcs_positive),
                pct(s.lcs_negative),
                pct(s.lp_transferable),
                pct(s.lp_positive),
                pct(s.lp_negative),
            ]);
        }
    }
    print_table(
        "Fig. 5 — transfer outcome vs architecture distance d",
        &["App", "d", "Pairs", "LCS transf", "LCS +", "LCS -", "LP transf", "LP +", "LP -"],
        &rows,
    );
    write_csv(
        &ctx.out.join("fig5.csv"),
        &[
            "app",
            "d",
            "pairs",
            "lcs_transferable",
            "lcs_positive",
            "lcs_negative",
            "lp_transferable",
            "lp_positive",
            "lp_negative",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: positive fraction dominates negatives for d < 3 and decays with d;"
    );
    println!("Uno's LCS positive fraction decays only marginally (shared choice sets).");
}
