//! Fig. 7: estimated objective metrics (scores) of candidate models during
//! NAS runtime, baseline vs LP vs LCS.
//!
//! For each application and scheme, `--seeds` NAS runs execute with the
//! regularized-evolution strategy; completions are binned into fixed time
//! slots (the paper uses 50 s; here the slot width adapts to the shortest
//! run) and per-slot means with 95% CIs are reported. Expectation: LP and
//! LCS curves sit significantly above the baseline after the warm-up phase
//! on CIFAR-10/NT3/Uno, with LCS ≥ LP; on MNIST all three are comparable.

use swt_core::TransferScheme;
use swt_experiments::{print_table, write_csv, ExpCtx};
use swt_nas::{NasTrace, StrategyKind};
use swt_stats::SlotBinner;

fn main() {
    let ctx = ExpCtx::from_args();
    let mut csv_rows = Vec::new();
    let mut summary_rows = Vec::new();
    for &app in &ctx.apps {
        // Collect all runs first so slots can share one time axis.
        let mut runs: Vec<(TransferScheme, NasTrace)> = Vec::new();
        for scheme in TransferScheme::all() {
            for &seed in &ctx.seeds {
                let (trace, _store) = ctx.run_or_load(app, scheme, StrategyKind::Evolution, seed);
                runs.push((scheme, trace));
            }
        }
        // The paper cuts all curves at the duration of the shortest
        // experiment.
        let cutoff = runs.iter().map(|(_, t)| t.wall_secs).fold(f64::INFINITY, f64::min);
        let slot = (cutoff / 25.0).max(1e-3);
        for scheme in TransferScheme::all() {
            let mut binner = SlotBinner::new(slot);
            for (s, trace) in &runs {
                if *s != scheme {
                    continue;
                }
                for e in &trace.events {
                    if e.t_end <= cutoff {
                        binner.push(e.t_end, e.score);
                    }
                }
            }
            let stats = binner.stats();
            for st in &stats {
                csv_rows.push(vec![
                    app.name().to_string(),
                    scheme.name().to_string(),
                    format!("{:.3}", st.slot_end),
                    st.n.to_string(),
                    format!("{:.5}", st.mean),
                    format!("{:.5}", st.ci95),
                ]);
            }
            // Summary: mean score over the last third of the run (the
            // "after the beginning stage" comparison the paper makes).
            let tail: Vec<&swt_stats::SlotStat> =
                stats.iter().filter(|s| s.slot_end > cutoff * 2.0 / 3.0).collect();
            let tail_mean = if tail.is_empty() {
                f64::NAN
            } else {
                tail.iter().map(|s| s.mean * s.n as f64).sum::<f64>()
                    / tail.iter().map(|s| s.n as f64).sum::<f64>()
            };
            // Mean transfer-lineage depth: how many ancestors' training a
            // candidate inherits on average (0 for the baseline).
            let lineage: f64 = {
                let ts: Vec<&NasTrace> =
                    runs.iter().filter(|(s, _)| *s == scheme).map(|(_, t)| t).collect();
                ts.iter().map(|t| t.mean_lineage_depth()).sum::<f64>() / ts.len().max(1) as f64
            };
            summary_rows.push(vec![
                app.name().to_string(),
                scheme.name().to_string(),
                format!("{:.4}", tail_mean),
                format!("{:.2}", lineage),
            ]);
        }
    }
    print_table(
        "Fig. 7 — mean candidate score over the final third of NAS runtime",
        &["App", "Scheme", "Tail mean score", "Mean lineage depth"],
        &summary_rows,
    );
    write_csv(
        &ctx.out.join("fig7.csv"),
        &["app", "scheme", "slot_end_secs", "n", "mean_score", "ci95"],
        &csv_rows,
    );
    write_csv(
        &ctx.out.join("fig7_summary.csv"),
        &["app", "scheme", "tail_mean_score", "mean_lineage_depth"],
        &summary_rows,
    );
    println!(
        "\nPaper reference: LP/LCS curves significantly above baseline for CIFAR-10, NT3, Uno;"
    );
    println!("MNIST comparable across schemes; LCS slightly above LP on CIFAR-10 and Uno.");
}
