//! Shared full-training data collection for Fig. 8 and Tables III/IV.

use crate::ExpCtx;
use std::path::Path;
use std::sync::Arc;
use swt_core::TransferScheme;
use swt_data::AppKind;
use swt_nas::{full_train_top_k, StrategyKind};
use swt_space::SearchSpace;

pub const TOP_K: usize = 10;
pub const MAX_EPOCHS: usize = 20;

/// One fully-trained top-K model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    pub app: String,
    pub scheme: String,
    pub seed: u64,
    pub candidate: u64,
    pub estimate: f64,
    pub epochs_early_stop: usize,
    pub metric_early_stop: f64,
    pub metric_full: f64,
    pub params: usize,
}

fn csv_path(ctx: &ExpCtx, app: AppKind) -> std::path::PathBuf {
    let data = match ctx.scale {
        swt_data::DataScale::Quick => "q",
        swt_data::DataScale::Full => "f",
    };
    ctx.out.join(format!(
        "fig8_models_{}_c{}_s{}_p{}_{}.csv",
        app.name().to_lowercase().replace('-', ""),
        ctx.candidates,
        ctx.seeds.len(),
        ctx.population,
        data
    ))
}

fn load_rows(path: &Path) -> Option<Vec<ModelRow>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 9 {
            return None;
        }
        rows.push(ModelRow {
            app: cols[0].to_string(),
            scheme: cols[1].to_string(),
            seed: cols[2].parse().ok()?,
            candidate: cols[3].parse().ok()?,
            estimate: cols[4].parse().ok()?,
            epochs_early_stop: cols[5].parse().ok()?,
            metric_early_stop: cols[6].parse().ok()?,
            metric_full: cols[7].parse().ok()?,
            params: cols[8].parse().ok()?,
        });
    }
    (!rows.is_empty()).then_some(rows)
}

fn save_rows(path: &Path, rows: &[ModelRow]) {
    let mut s = String::from(
        "app,scheme,seed,candidate,estimate,epochs_early_stop,metric_early_stop,metric_full,params\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{},{},{},{},{:.6},{},{:.6},{:.6},{}\n",
            r.app,
            r.scheme,
            r.seed,
            r.candidate,
            r.estimate,
            r.epochs_early_stop,
            r.metric_early_stop,
            r.metric_full,
            r.params
        ));
    }
    let _ = std::fs::write(path, s);
}

/// Fully train the top-K of every `(app, scheme, seed)` run, using per-app
/// cached results from previous invocations when available.
pub fn collect(ctx: &ExpCtx) -> Vec<ModelRow> {
    let mut rows = Vec::new();
    for &app in &ctx.apps {
        let path = csv_path(ctx, app);
        if let Some(cached) = load_rows(&path) {
            swt_obs::info!("swt_experiments", "cache {}", path.display());
            rows.extend(cached);
            continue;
        }
        let fresh = collect_app(ctx, app);
        save_rows(&path, &fresh);
        rows.extend(fresh);
    }
    rows
}

fn collect_app(ctx: &ExpCtx, app: AppKind) -> Vec<ModelRow> {
    let problem = ctx.problem(app);
    let space = Arc::new(SearchSpace::for_app(app));
    let mut traces = Vec::new();
    for scheme in TransferScheme::all() {
        for &seed in &ctx.seeds {
            let (trace, store) = ctx.run_or_load(app, scheme, StrategyKind::Evolution, seed);
            traces.push((scheme, seed, trace, store));
        }
    }
    // Same time budget for every scheme: the shortest experiment's duration
    // (Section VIII-C).
    let cutoff = traces.iter().map(|(_, _, t, _)| t.wall_secs).fold(f64::INFINITY, f64::min);
    let mut rows = Vec::new();
    for (scheme, seed, trace, store) in &traces {
        swt_obs::info!(
            "swt_experiments",
            "full-train {} {} seed {seed}",
            app.name(),
            scheme.name()
        );
        let report = full_train_top_k(
            &problem,
            Arc::clone(&space),
            Arc::clone(store),
            trace,
            TOP_K,
            MAX_EPOCHS,
            cutoff,
        );
        for o in &report.outcomes {
            rows.push(ModelRow {
                app: app.name().to_string(),
                scheme: scheme.name().to_string(),
                seed: *seed,
                candidate: o.id,
                estimate: o.estimate,
                epochs_early_stop: o.epochs_early_stop,
                metric_early_stop: o.metric_early_stop,
                metric_full: o.metric_full,
                params: o.params,
            });
        }
    }
    rows
}
