//! Property-style tests for the LP/LCS matchers — the invariants the paper
//! states in Section IV hold for *all* shape sequences, not just the ones we
//! hand-pick. Randomized sweeps are driven by the crate's own seeded [`Rng`]
//! (the container builds fully offline, so no proptest) and therefore replay
//! deterministically.

use swt_core::{lcs_match, lp_match};
use swt_tensor::{Rng, Shape};

/// Shape sequences over a small alphabet so collisions are common (like real
/// search spaces, where many layers share shapes).
fn shape_vec(rng: &mut Rng) -> Vec<Shape> {
    let len = rng.below(12);
    (0..len).map(|_| Shape::new([rng.below(4) + 1])).collect()
}

fn refs(v: &[Shape]) -> Vec<&Shape> {
    v.iter().collect()
}

/// Exponential reference LCS length (inputs are capped at 12 elements).
fn brute_lcs_len(a: &[&Shape], b: &[&Shape]) -> usize {
    if a.is_empty() || b.is_empty() {
        0
    } else if a[0] == b[0] {
        1 + brute_lcs_len(&a[1..], &b[1..])
    } else {
        brute_lcs_len(&a[1..], b).max(brute_lcs_len(a, &b[1..]))
    }
}

#[test]
fn lcs_length_is_optimal() {
    let mut rng = Rng::seed(0x1C5);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        let b = shape_vec(&mut rng);
        let fast = lcs_match(&refs(&a), &refs(&b));
        assert_eq!(fast.len(), brute_lcs_len(&refs(&a), &refs(&b)), "case {case}: {a:?} vs {b:?}");
    }
}

#[test]
fn lcs_is_a_valid_common_subsequence() {
    let mut rng = Rng::seed(0x5EC);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        let b = shape_vec(&mut rng);
        let pairs = lcs_match(&refs(&a), &refs(&b));
        // Strictly increasing in both coordinates, all matches equal.
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "case {case}");
            assert!(w[0].1 < w[1].1, "case {case}");
        }
        for &(i, j) in &pairs {
            assert!(i < a.len() && j < b.len(), "case {case}");
            assert_eq!(&a[i], &b[j], "case {case}");
        }
    }
}

#[test]
fn lp_is_prefix_of_both() {
    let mut rng = Rng::seed(0x1B);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        let b = shape_vec(&mut rng);
        let pairs = lp_match(&refs(&a), &refs(&b));
        for (k, &(i, j)) in pairs.iter().enumerate() {
            assert_eq!(i, k, "case {case}");
            assert_eq!(j, k, "case {case}");
            assert_eq!(&a[k], &b[k], "case {case}");
        }
        // Maximality: the element right after the prefix differs (or one
        // sequence ended).
        let k = pairs.len();
        if k < a.len() && k < b.len() {
            assert_ne!(&a[k], &b[k], "case {case}");
        }
    }
}

#[test]
fn lcs_never_transfers_less_than_lp() {
    // Section IV-A: "LCS will always transfer at least as many tensors
    // as LP."
    let mut rng = Rng::seed(0xA11);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        let b = shape_vec(&mut rng);
        assert!(
            lcs_match(&refs(&a), &refs(&b)).len() >= lp_match(&refs(&a), &refs(&b)).len(),
            "case {case}"
        );
    }
}

#[test]
fn lcs_is_symmetric_in_length() {
    let mut rng = Rng::seed(0x5F1);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        let b = shape_vec(&mut rng);
        let ab = lcs_match(&refs(&a), &refs(&b)).len();
        let ba = lcs_match(&refs(&b), &refs(&a)).len();
        assert_eq!(ab, ba, "case {case}");
    }
}

#[test]
fn self_match_is_total() {
    let mut rng = Rng::seed(0x70F);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        assert_eq!(lp_match(&refs(&a), &refs(&a)).len(), a.len(), "case {case}");
        assert_eq!(lcs_match(&refs(&a), &refs(&a)).len(), a.len(), "case {case}");
    }
}

#[test]
fn lcs_bounded_by_shorter_sequence() {
    let mut rng = Rng::seed(0xB0B);
    for case in 0..200 {
        let a = shape_vec(&mut rng);
        let b = shape_vec(&mut rng);
        assert!(lcs_match(&refs(&a), &refs(&b)).len() <= a.len().min(b.len()), "case {case}");
    }
}
