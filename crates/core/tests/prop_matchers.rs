//! Property-based tests for the LP/LCS matchers — the invariants the paper
//! states in Section IV hold for *all* shape sequences, not just the ones we
//! hand-pick.

use proptest::prelude::*;
use swt_core::{lcs_match, lp_match};
use swt_tensor::Shape;

/// Shape sequences over a small alphabet so collisions are common (like real
/// search spaces, where many layers share shapes).
fn shape_vec() -> impl Strategy<Value = Vec<Shape>> {
    prop::collection::vec(0usize..4, 0..12)
        .prop_map(|v| v.into_iter().map(|d| Shape::new([d + 1])).collect())
}

fn refs(v: &[Shape]) -> Vec<&Shape> {
    v.iter().collect()
}

/// Exponential reference LCS length (inputs are capped at 12 elements).
fn brute_lcs_len(a: &[&Shape], b: &[&Shape]) -> usize {
    if a.is_empty() || b.is_empty() {
        0
    } else if a[0] == b[0] {
        1 + brute_lcs_len(&a[1..], &b[1..])
    } else {
        brute_lcs_len(&a[1..], b).max(brute_lcs_len(a, &b[1..]))
    }
}

proptest! {
    #[test]
    fn lcs_length_is_optimal(a in shape_vec(), b in shape_vec()) {
        let fast = lcs_match(&refs(&a), &refs(&b));
        prop_assert_eq!(fast.len(), brute_lcs_len(&refs(&a), &refs(&b)));
    }

    #[test]
    fn lcs_is_a_valid_common_subsequence(a in shape_vec(), b in shape_vec()) {
        let pairs = lcs_match(&refs(&a), &refs(&b));
        // Strictly increasing in both coordinates, all matches equal.
        for w in pairs.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        for &(i, j) in &pairs {
            prop_assert!(i < a.len() && j < b.len());
            prop_assert_eq!(&a[i], &b[j]);
        }
    }

    #[test]
    fn lp_is_prefix_of_both(a in shape_vec(), b in shape_vec()) {
        let pairs = lp_match(&refs(&a), &refs(&b));
        for (k, &(i, j)) in pairs.iter().enumerate() {
            prop_assert_eq!(i, k);
            prop_assert_eq!(j, k);
            prop_assert_eq!(&a[k], &b[k]);
        }
        // Maximality: the element right after the prefix differs (or one
        // sequence ended).
        let k = pairs.len();
        if k < a.len() && k < b.len() {
            prop_assert_ne!(&a[k], &b[k]);
        }
    }

    #[test]
    fn lcs_never_transfers_less_than_lp(a in shape_vec(), b in shape_vec()) {
        // Section IV-A: "LCS will always transfer at least as many tensors
        // as LP."
        prop_assert!(lcs_match(&refs(&a), &refs(&b)).len() >= lp_match(&refs(&a), &refs(&b)).len());
    }

    #[test]
    fn lcs_is_symmetric_in_length(a in shape_vec(), b in shape_vec()) {
        let ab = lcs_match(&refs(&a), &refs(&b)).len();
        let ba = lcs_match(&refs(&b), &refs(&a)).len();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn self_match_is_total(a in shape_vec()) {
        prop_assert_eq!(lp_match(&refs(&a), &refs(&a)).len(), a.len());
        prop_assert_eq!(lcs_match(&refs(&a), &refs(&a)).len(), a.len());
    }

    #[test]
    fn lcs_bounded_by_shorter_sequence(a in shape_vec(), b in shape_vec()) {
        prop_assert!(lcs_match(&refs(&a), &refs(&b)).len() <= a.len().min(b.len()));
    }
}
