//! Provider selection (Section V).
//!
//! With regularized evolution the provider is simply the mutation parent
//! (`d = 1` by construction, Algorithm 1) — no search needed. For other
//! strategies, [`select_nearest`] scans a candidate pool for the provider
//! with the smallest architecture distance `d`, breaking ties towards the
//! higher-scored provider.

use swt_space::{distance, ArchSeq};

/// One entry of the provider pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEntry<Id> {
    pub id: Id,
    pub arch: ArchSeq,
    pub score: f64,
}

/// Pick the pool entry with minimal distance to `receiver` (ties: best
/// score, then first). Returns `None` for an empty pool. `O(|pool| · k)`
/// where `k` is the sequence length — the scan the paper avoids by
/// integrating with evolution, provided for completeness and used by the
/// ablation benches.
pub fn select_nearest<'a, Id>(
    receiver: &ArchSeq,
    pool: &'a [PoolEntry<Id>],
) -> Option<&'a PoolEntry<Id>> {
    pool.iter().min_by(|a, b| {
        let da = distance(receiver, &a.arch);
        let db = distance(receiver, &b.arch);
        da.cmp(&db).then(b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, arch: Vec<u16>, score: f64) -> PoolEntry<u32> {
        PoolEntry { id, arch: ArchSeq::new(arch), score }
    }

    #[test]
    fn picks_minimum_distance() {
        let receiver = ArchSeq::new(vec![1, 1, 1, 1]);
        let pool = vec![
            entry(0, vec![0, 0, 0, 0], 0.9), // d = 4
            entry(1, vec![1, 1, 0, 0], 0.2), // d = 2
            entry(2, vec![1, 1, 1, 0], 0.1), // d = 1  <- winner
        ];
        assert_eq!(select_nearest(&receiver, &pool).unwrap().id, 2);
    }

    #[test]
    fn ties_break_by_score() {
        let receiver = ArchSeq::new(vec![1, 1]);
        let pool = vec![
            entry(0, vec![1, 0], 0.3), // d = 1
            entry(1, vec![0, 1], 0.8), // d = 1, better score
        ];
        assert_eq!(select_nearest(&receiver, &pool).unwrap().id, 1);
    }

    #[test]
    fn exact_match_wins_outright() {
        let receiver = ArchSeq::new(vec![2, 3]);
        let pool = vec![
            entry(0, vec![2, 2], 1.0),
            entry(1, vec![2, 3], 0.0), // d = 0
        ];
        assert_eq!(select_nearest(&receiver, &pool).unwrap().id, 1);
    }

    #[test]
    fn empty_pool_is_none() {
        let receiver = ArchSeq::new(vec![0]);
        assert!(select_nearest::<u32>(&receiver, &[]).is_none());
    }
}
