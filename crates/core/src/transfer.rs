//! Applying a transfer plan: copy provider checkpoint tensors into a freshly
//! initialised receiver model.

use crate::plan::TransferPlan;
use std::collections::HashMap;
use swt_nn::Model;
use swt_tensor::Tensor;

/// Outcome of applying a plan (reported in traces and the Fig. 10 overhead
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferStats {
    /// Tensors actually copied.
    pub tensors: usize,
    /// Bytes copied.
    pub bytes: usize,
    /// Plan entries that could not be applied (name missing from the
    /// checkpoint or shape mismatch — indicates a stale checkpoint).
    pub skipped: usize,
}

/// Initialise `receiver`'s matched parameters from `provider_checkpoint`
/// (the provider's `state_dict` as loaded from a checkpoint store). All
/// other receiver parameters keep their random initialisation, exactly as in
/// Section IV: "starting from the weights of the provider model for the
/// layers that are included in LP and LCS, and from random weights for the
/// rest".
pub fn apply_transfer(
    plan: &TransferPlan,
    provider_checkpoint: &[(String, Tensor)],
    receiver: &mut Model,
) -> TransferStats {
    let by_name: HashMap<&str, &Tensor> =
        provider_checkpoint.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut stats = TransferStats::default();
    for (provider_name, receiver_name) in plan.pairs() {
        match by_name.get(provider_name.as_str()) {
            Some(tensor) if receiver.set_param(receiver_name, tensor) => {
                stats.tensors += 1;
                stats.bytes += tensor.numel() * 4;
            }
            _ => stats.skipped += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use crate::shape_seq::ShapeSeq;
    use swt_nn::{Activation, LayerSpec, ModelSpec};
    use swt_tensor::Padding;

    fn conv_net(extra_mid_layer: bool) -> ModelSpec {
        let mut ops = vec![
            LayerSpec::Conv2D { filters: 4, kernel: 3, padding: Padding::Same, l2: 0.0 },
            LayerSpec::Activation(Activation::Relu),
        ];
        if extra_mid_layer {
            // Extra conv with different filter count: its params match
            // nothing in the provider.
            ops.push(LayerSpec::Conv2D { filters: 6, kernel: 1, padding: Padding::Same, l2: 0.0 });
            ops.push(LayerSpec::Conv2D { filters: 4, kernel: 1, padding: Padding::Same, l2: 0.0 });
        }
        ops.extend([LayerSpec::Flatten, LayerSpec::Dense { units: 10, activation: None }]);
        ModelSpec::chain(vec![5, 5, 2], ops).unwrap()
    }

    #[test]
    fn identical_specs_transfer_everything() {
        let spec = conv_net(false);
        let provider = Model::build(&spec, 1).unwrap();
        let mut receiver = Model::build(&spec, 2).unwrap();
        // Sanity: different seeds -> different weights.
        assert!(!provider.named_params()[0].1.approx_eq(&receiver.named_params()[0].1, 0.0));

        let seq = ShapeSeq::of(&spec).unwrap();
        let plan = TransferPlan::build(Matcher::Lp, &seq, &seq);
        let stats = apply_transfer(&plan, &provider.state_dict(), &mut receiver);
        assert_eq!(plan.matched_layers(), seq.len());
        assert_eq!(stats.tensors, plan.tensors());
        assert_eq!(stats.tensors, provider.named_params().len());
        assert_eq!(stats.skipped, 0);
        for ((_, a), (_, b)) in provider.named_params().iter().zip(receiver.named_params().iter()) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn lcs_transfers_across_insertion_lp_does_not() {
        let pspec = conv_net(false);
        let rspec = conv_net(true);
        let provider = Model::build(&pspec, 3).unwrap();
        let pseq = ShapeSeq::of(&pspec).unwrap();
        let rseq = ShapeSeq::of(&rspec).unwrap();

        // LP: only the first conv transfers (flattened dense dims match here
        // because `Same` padding keeps spatial size, so check precisely).
        let lp_plan = TransferPlan::build(Matcher::Lp, &pseq, &rseq);
        let lcs_plan = TransferPlan::build(Matcher::Lcs, &pseq, &rseq);
        assert!(lcs_plan.tensors() >= lp_plan.tensors());
        assert!(lcs_plan.tensors() > 0);

        let mut receiver = Model::build(&rspec, 4).unwrap();
        let before = receiver.named_params();
        let stats = apply_transfer(&lcs_plan, &provider.state_dict(), &mut receiver);
        assert_eq!(stats.tensors, lcs_plan.tensors());
        assert_eq!(stats.skipped, 0);

        // Matched receiver tensors now equal provider values; unmatched ones
        // keep their random init.
        let after = receiver.named_params();
        let provider_params: HashMap<String, Tensor> =
            provider.named_params().into_iter().collect();
        let matched: std::collections::HashSet<&str> =
            lcs_plan.pairs().iter().map(|(_, r)| r.as_str()).collect();
        for ((name, now), (_, was)) in after.iter().zip(before.iter()) {
            if matched.contains(name.as_str()) {
                let src = lcs_plan
                    .pairs()
                    .iter()
                    .find(|(_, r)| r == name)
                    .map(|(p, _)| &provider_params[p])
                    .unwrap();
                assert!(now.approx_eq(src, 0.0), "{name} should hold provider weights");
            } else {
                assert!(now.approx_eq(was, 0.0), "{name} should keep its random init");
            }
        }
    }

    #[test]
    fn missing_checkpoint_entries_are_skipped_not_fatal() {
        let spec = conv_net(false);
        let provider = Model::build(&spec, 5).unwrap();
        let mut receiver = Model::build(&spec, 6).unwrap();
        let seq = ShapeSeq::of(&spec).unwrap();
        let plan = TransferPlan::build(Matcher::Lcs, &seq, &seq);
        // Drop half the checkpoint.
        let mut ckpt = provider.state_dict();
        ckpt.truncate(2);
        let stats = apply_transfer(&plan, &ckpt, &mut receiver);
        assert_eq!(stats.tensors, 2);
        assert_eq!(stats.skipped, plan.tensors() - 2);
        let _ = seq;
    }

    #[test]
    fn transferred_model_predicts_like_provider_when_identical() {
        let spec = conv_net(false);
        let mut provider = Model::build(&spec, 7).unwrap();
        let mut receiver = Model::build(&spec, 8).unwrap();
        let seq = ShapeSeq::of(&spec).unwrap();
        let plan = TransferPlan::build(Matcher::Lcs, &seq, &seq);
        apply_transfer(&plan, &provider.state_dict(), &mut receiver);
        let mut rng = swt_tensor::Rng::seed(9);
        let x = Tensor::rand_normal([3, 5, 5, 2], 0.0, 1.0, &mut rng);
        let yp = provider.forward(&[&x], false);
        let yr = receiver.forward(&[&x], false);
        assert!(yp.approx_eq(&yr, 1e-6), "full transfer must reproduce the provider exactly");
    }

    use std::collections::HashMap;
}
