//! Shape sequences: the string the matchers operate on.
//!
//! Following the paper's Fig. 3, the sequence contains one element per
//! *parameterised layer*, whose shape is the layer's primary weight tensor —
//! the convolution filter bank `(f, w, h)` or the dense matrix `(m, n)`.
//! Secondary tensors (biases, batch-norm β) ride along with their layer:
//! when two layers' primary shapes match, every same-named secondary tensor
//! matches too (a bias dimension is determined by its kernel's output
//! dimension).

use swt_checkpoint::CheckpointIndex;
use swt_nn::{ModelSpec, SpecError};
use swt_tensor::Shape;

/// One parameterised layer of the sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeEntry {
    /// Layer (node) name, e.g. `n3_conv2d`.
    pub layer: String,
    /// The primary weight shape the matchers compare (kernel / gamma).
    pub primary: Shape,
    /// All tensors of the layer as `(local_name, full_name, shape)`,
    /// primary included.
    pub tensors: Vec<(String, String, Shape)>,
}

impl ShapeEntry {
    /// Total bytes across the layer's tensors.
    pub fn bytes(&self) -> usize {
        self.tensors.iter().map(|(_, _, s)| s.size_bytes()).sum()
    }
}

/// The ordered list of a model's parameterised layers — the paper's *shape
/// sequence* (Fig. 3), derived from the spec without building the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeSeq {
    entries: Vec<ShapeEntry>,
}

/// Which local parameter name is a layer's primary tensor.
fn is_primary(local: &str) -> bool {
    matches!(local, "kernel" | "gamma")
}

/// Group flat `(full_name, shape)` parameter lists (as produced by
/// `ModelSpec::param_shapes` or read back from a checkpoint) into layer
/// entries. Non-trainable state (running statistics) must be filtered out by
/// the caller.
fn group(params: impl IntoIterator<Item = (String, Shape)>) -> Vec<ShapeEntry> {
    let mut entries: Vec<ShapeEntry> = Vec::new();
    for (full_name, shape) in params {
        let (layer, local) = match full_name.split_once('/') {
            Some((l, p)) => (l.to_string(), p.to_string()),
            None => (full_name.clone(), "kernel".to_string()),
        };
        match entries.last_mut() {
            Some(entry) if entry.layer == layer => {
                if is_primary(&local) {
                    entry.primary = shape.clone();
                }
                entry.tensors.push((local, full_name, shape));
            }
            _ => {
                entries.push(ShapeEntry {
                    layer,
                    primary: shape.clone(),
                    tensors: vec![(local, full_name, shape)],
                });
            }
        }
    }
    entries
}

impl ShapeSeq {
    /// Extract the shape sequence of a model spec.
    pub fn of(spec: &ModelSpec) -> Result<ShapeSeq, SpecError> {
        Ok(ShapeSeq { entries: group(spec.param_shapes()?) })
    }

    /// Build from flat `(full_name, shape)` pairs — e.g. the names/shapes of
    /// a checkpoint. The caller must exclude non-trainable state.
    pub fn from_params(params: Vec<(String, Shape)>) -> ShapeSeq {
        ShapeSeq { entries: group(params) }
    }

    /// Build a provider's shape sequence straight from a checkpoint index —
    /// no tensor payloads needed. Non-trainable running statistics are
    /// excluded, mirroring what the evaluator transfers.
    pub fn from_checkpoint_index(index: &CheckpointIndex) -> ShapeSeq {
        let params = index
            .tensors()
            .iter()
            .filter(|m| !m.name.ends_with("running_mean") && !m.name.ends_with("running_var"))
            .map(|m| (m.name.clone(), m.shape()))
            .collect();
        ShapeSeq::from_params(params)
    }

    /// The layer entries in topological order.
    pub fn entries(&self) -> &[ShapeEntry] {
        &self.entries
    }

    /// The primary shapes, in order — the matcher input.
    pub fn shapes(&self) -> Vec<&Shape> {
        self.entries.iter().map(|e| &e.primary).collect()
    }

    /// Sequence length (number of parameterised layers).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a parameter-free model.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry `i`.
    pub fn entry(&self, i: usize) -> &ShapeEntry {
        &self.entries[i]
    }

    /// Total bytes of the parameters (f32).
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(ShapeEntry::bytes).sum()
    }

    /// True iff the two sequences share at least one identical primary
    /// shape — the paper's "shareable pair" predicate from Fig. 2 (any pair
    /// of tensors with identical shape, regardless of position).
    pub fn shares_any_shape(&self, other: &ShapeSeq) -> bool {
        use std::collections::HashSet;
        let mine: HashSet<&Shape> = self.entries.iter().map(|e| &e.primary).collect();
        other.entries.iter().any(|e| mine.contains(&e.primary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_nn::{Activation, LayerSpec, ModelSpec};
    use swt_tensor::Padding;

    fn cnn(extra_conv: bool) -> ModelSpec {
        let mut ops =
            vec![LayerSpec::Conv2D { filters: 4, kernel: 3, padding: Padding::Same, l2: 0.0 }];
        if extra_conv {
            ops.push(LayerSpec::Conv2D { filters: 4, kernel: 3, padding: Padding::Same, l2: 0.0 });
        }
        ops.extend([
            LayerSpec::BatchNorm,
            LayerSpec::Flatten,
            LayerSpec::Dense { units: 8, activation: Some(Activation::Relu) },
        ]);
        ModelSpec::chain(vec![6, 6, 2], ops).unwrap()
    }

    #[test]
    fn one_entry_per_parameterised_layer() {
        let seq = ShapeSeq::of(&cnn(false)).unwrap();
        assert_eq!(seq.len(), 3); // conv, batchnorm, dense
        assert_eq!(seq.entry(0).primary.dims(), &[3, 3, 2, 4]);
        assert_eq!(seq.entry(0).tensors.len(), 2); // kernel + bias
        assert_eq!(seq.entry(1).primary.dims(), &[4]); // gamma
        assert_eq!(seq.entry(2).primary.dims(), &[144, 8]);
        assert!(seq.entry(2).tensors.iter().any(|(l, _, _)| l == "bias"));
    }

    #[test]
    fn bytes_cover_all_tensors() {
        let seq = ShapeSeq::of(&cnn(false)).unwrap();
        // conv k+b, bn gamma+beta, dense k+b.
        let expected = (3 * 3 * 2 * 4 + 4) + (4 + 4) + (144 * 8 + 8);
        assert_eq!(seq.total_bytes(), expected * 4);
    }

    #[test]
    fn biases_do_not_create_shareability() {
        // Two dense layers with equal widths but different input dims share
        // a bias shape but not a primary shape -> NOT shareable. This is the
        // property that keeps Fig. 2 meaningful (the fixed output head's
        // bias is identical in every candidate).
        let a = ModelSpec::chain(vec![4], vec![LayerSpec::Dense { units: 8, activation: None }])
            .unwrap();
        let b = ModelSpec::chain(vec![6], vec![LayerSpec::Dense { units: 8, activation: None }])
            .unwrap();
        let sa = ShapeSeq::of(&a).unwrap();
        let sb = ShapeSeq::of(&b).unwrap();
        assert!(!sa.shares_any_shape(&sb));
        assert!(sa.shares_any_shape(&sa));
    }

    #[test]
    fn shares_any_shape_is_position_independent() {
        let a = ShapeSeq::from_params(vec![
            ("l0/kernel".into(), Shape::new([3, 3])),
            ("l1/kernel".into(), Shape::new([5, 2])),
        ]);
        let b = ShapeSeq::from_params(vec![
            ("x0/kernel".into(), Shape::new([7, 7])),
            ("x1/kernel".into(), Shape::new([3, 3])),
        ]);
        let c = ShapeSeq::from_params(vec![("z/kernel".into(), Shape::new([9, 1]))]);
        assert!(a.shares_any_shape(&b));
        assert!(b.shares_any_shape(&a));
        assert!(!a.shares_any_shape(&c));
        assert!(!ShapeSeq::from_params(vec![]).shares_any_shape(&a));
    }

    #[test]
    fn from_params_groups_by_layer_prefix() {
        let seq = ShapeSeq::from_params(vec![
            ("n1_conv2d/kernel".into(), Shape::new([3, 3, 1, 4])),
            ("n1_conv2d/bias".into(), Shape::new([4])),
            ("n5_dense/kernel".into(), Shape::new([16, 2])),
            ("n5_dense/bias".into(), Shape::new([2])),
        ]);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.entry(0).layer, "n1_conv2d");
        assert_eq!(seq.entry(0).primary.dims(), &[3, 3, 1, 4]);
        assert_eq!(seq.entry(1).tensors.len(), 2);
    }

    #[test]
    fn from_checkpoint_index_filters_running_stats() {
        let index = swt_checkpoint::CheckpointIndex::synthesized(vec![
            ("n1_conv2d/kernel".to_string(), vec![3, 3, 1, 4]),
            ("n1_conv2d/bias".to_string(), vec![4]),
            ("n2_bn/gamma".to_string(), vec![4]),
            ("n2_bn/beta".to_string(), vec![4]),
            ("n2_bn/running_mean".to_string(), vec![4]),
            ("n2_bn/running_var".to_string(), vec![4]),
        ]);
        let seq = ShapeSeq::from_checkpoint_index(&index);
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.entry(1).tensors.len(), 2); // gamma + beta only
        assert_eq!(seq.entry(1).primary.dims(), &[4]);
    }

    #[test]
    fn deeper_model_has_longer_sequence() {
        let short = ShapeSeq::of(&cnn(false)).unwrap();
        let long = ShapeSeq::of(&cnn(true)).unwrap();
        assert_eq!(long.len(), short.len() + 1);
    }
}
