//! Transfer plans: the resolved mapping of provider tensors onto receiver
//! tensors.

use crate::matcher::Matcher;
use crate::shape_seq::ShapeSeq;

/// A resolved weight-transfer plan between one provider and one receiver.
///
/// Matching happens at layer granularity on the primary weight shapes
/// (Fig. 3); each matched layer contributes every same-named,
/// same-shaped tensor pair (kernel + bias, or gamma + beta).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferPlan {
    /// Matched layers as `(provider_layer, receiver_layer)`.
    layers: Vec<(String, String)>,
    /// `(provider_tensor, receiver_tensor)` for every transferred tensor.
    pairs: Vec<(String, String)>,
    /// Total bytes the plan moves.
    bytes: usize,
    /// Receiver sequence length (for coverage statistics).
    receiver_len: usize,
}

impl TransferPlan {
    /// Match `provider` against `receiver` with the given heuristic.
    pub fn build(matcher: Matcher, provider: &ShapeSeq, receiver: &ShapeSeq) -> TransferPlan {
        let idx_pairs = matcher.match_shapes(&provider.shapes(), &receiver.shapes());
        let mut layers = Vec::with_capacity(idx_pairs.len());
        let mut pairs = Vec::new();
        let mut bytes = 0;
        for (pi, ri) in idx_pairs {
            let p = provider.entry(pi);
            let r = receiver.entry(ri);
            debug_assert_eq!(p.primary, r.primary);
            layers.push((p.layer.clone(), r.layer.clone()));
            for (local, full, shape) in &p.tensors {
                // Pair with the receiver tensor of the same local name; its
                // shape is determined by the (equal) primary shape, but we
                // re-check to stay safe against layer-kind collisions.
                if let Some((_, r_full, r_shape)) = r.tensors.iter().find(|(l, _, _)| l == local) {
                    if shape == r_shape {
                        bytes += shape.size_bytes();
                        pairs.push((full.clone(), r_full.clone()));
                    }
                }
            }
        }
        TransferPlan { layers, pairs, bytes, receiver_len: receiver.len() }
    }

    /// The matched `(provider_layer, receiver_layer)` pairs.
    pub fn layers(&self) -> &[(String, String)] {
        &self.layers
    }

    /// The matched `(provider_name, receiver_name)` tensor pairs.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Number of tensors transferred.
    pub fn tensors(&self) -> usize {
        self.pairs.len()
    }

    /// Deduplicated provider-side tensor names — exactly the payloads a
    /// partial checkpoint read (`CheckpointStore::load_tensors`) must fetch
    /// to execute the plan.
    pub fn provider_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::with_capacity(self.pairs.len());
        for (provider, _) in &self.pairs {
            if !names.contains(provider) {
                names.push(provider.clone());
            }
        }
        names
    }

    /// Number of layers matched.
    pub fn matched_layers(&self) -> usize {
        self.layers.len()
    }

    /// Bytes moved by the plan.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// True iff nothing matches — the pair is *not transferable*
    /// (Section IV-B's predicate).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Fraction of receiver layers that receive transferred weights.
    pub fn coverage(&self) -> f64 {
        if self.receiver_len == 0 {
            0.0
        } else {
            self.layers.len() as f64 / self.receiver_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_tensor::Shape;

    /// A sequence of dense-ish layers: `(layer, kernel_dims)` with a bias of
    /// the kernel's last dim.
    fn seq(layers: &[(&str, &[usize])]) -> ShapeSeq {
        let mut params = Vec::new();
        for (name, dims) in layers {
            params.push((format!("{name}/kernel"), Shape::new(dims.to_vec())));
            params.push((format!("{name}/bias"), Shape::new([dims[dims.len() - 1]])));
        }
        ShapeSeq::from_params(params)
    }

    #[test]
    fn plan_records_layers_tensors_and_bytes() {
        let provider = seq(&[("a", &[4, 8]), ("b", &[8, 2])]);
        let receiver = seq(&[("x", &[4, 8]), ("y", &[9, 2])]);
        let plan = TransferPlan::build(Matcher::Lp, &provider, &receiver);
        assert_eq!(plan.matched_layers(), 1);
        assert_eq!(plan.tensors(), 2); // kernel + bias
        assert_eq!(plan.pairs()[0], ("a/kernel".to_string(), "x/kernel".to_string()));
        assert_eq!(plan.pairs()[1], ("a/bias".to_string(), "x/bias".to_string()));
        assert_eq!(plan.bytes(), (4 * 8 + 8) * 4);
        assert!((plan.coverage() - 0.5).abs() < 1e-12);
        assert!(!plan.is_empty());
    }

    #[test]
    fn provider_names_are_deduped_in_plan_order() {
        let provider = seq(&[("a", &[4, 8]), ("b", &[8, 2])]);
        let receiver = seq(&[("x", &[4, 8]), ("y", &[8, 2])]);
        let plan = TransferPlan::build(Matcher::Lp, &provider, &receiver);
        assert_eq!(plan.provider_names(), vec!["a/kernel", "a/bias", "b/kernel", "b/bias"]);
    }

    #[test]
    fn lcs_plan_reaches_past_mismatch() {
        let provider = seq(&[("p0", &[3, 3]), ("p1", &[5, 5])]);
        let receiver = seq(&[("r0", &[3, 3]), ("rX", &[4, 4]), ("r1", &[5, 5])]);
        let lp = TransferPlan::build(Matcher::Lp, &provider, &receiver);
        let lcs = TransferPlan::build(Matcher::Lcs, &provider, &receiver);
        assert_eq!(lp.matched_layers(), 1);
        assert_eq!(lcs.matched_layers(), 2);
        assert!(lcs.pairs().contains(&("p1/kernel".to_string(), "r1/kernel".to_string())));
    }

    #[test]
    fn bias_only_collisions_do_not_transfer() {
        // Same widths (hence same bias shapes) but different kernels: no
        // layer match, no transfer.
        let provider = seq(&[("p", &[2, 8])]);
        let receiver = seq(&[("r", &[3, 8])]);
        let plan = TransferPlan::build(Matcher::Lcs, &provider, &receiver);
        assert!(plan.is_empty());
        assert_eq!(plan.bytes(), 0);
        assert_eq!(plan.coverage(), 0.0);
    }

    #[test]
    fn mismatched_local_names_are_skipped() {
        // Same primary shape but one side lacks a bias: only the kernel
        // moves.
        let provider = ShapeSeq::from_params(vec![("p/kernel".to_string(), Shape::new([4, 4]))]);
        let receiver = seq(&[("r", &[4, 4])]);
        let plan = TransferPlan::build(Matcher::Lcs, &provider, &receiver);
        assert_eq!(plan.matched_layers(), 1);
        assert_eq!(plan.tensors(), 1);
    }

    #[test]
    fn empty_receiver_coverage_zero() {
        let provider = seq(&[("p", &[2, 2])]);
        let receiver = ShapeSeq::from_params(vec![]);
        let plan = TransferPlan::build(Matcher::Lcs, &provider, &receiver);
        assert_eq!(plan.coverage(), 0.0);
        assert!(plan.is_empty());
    }
}
