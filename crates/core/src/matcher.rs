//! The LP and LCS shape-sequence matchers (Section IV-A).

use swt_tensor::Shape;

/// The three candidate-initialisation schemes compared throughout the
/// paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferScheme {
    /// Train from random weights (the DeepHyper baseline).
    Baseline,
    /// Longest-prefix weight transfer.
    Lp,
    /// Longest-common-subsequence weight transfer.
    Lcs,
}

impl TransferScheme {
    /// All schemes in the paper's presentation order.
    pub fn all() -> [TransferScheme; 3] {
        [TransferScheme::Baseline, TransferScheme::Lp, TransferScheme::Lcs]
    }

    /// The matcher, if this scheme transfers at all.
    pub fn matcher(self) -> Option<Matcher> {
        match self {
            TransferScheme::Baseline => None,
            TransferScheme::Lp => Some(Matcher::Lp),
            TransferScheme::Lcs => Some(Matcher::Lcs),
        }
    }

    /// Label used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            TransferScheme::Baseline => "Baseline",
            TransferScheme::Lp => "LP",
            TransferScheme::Lcs => "LCS",
        }
    }
}

/// A shape-sequence matching heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Matcher {
    /// Longest prefix, `O(min(n, m))`.
    Lp,
    /// Longest common subsequence, `O(nm)` Wagner–Fischer DP.
    Lcs,
}

impl Matcher {
    /// Matched index pairs `(provider_idx, receiver_idx)`, strictly
    /// increasing in both coordinates.
    pub fn match_shapes(self, provider: &[&Shape], receiver: &[&Shape]) -> Vec<(usize, usize)> {
        match self {
            Matcher::Lp => lp_match(provider, receiver),
            Matcher::Lcs => lcs_match(provider, receiver),
        }
    }
}

/// Longest-prefix matching: pair index `i` with index `i` while the shapes
/// are identical, stopping at the first mismatch.
///
/// ```
/// use swt_core::lp_match;
/// use swt_tensor::Shape;
/// let a = [Shape::new([3, 3]), Shape::new([16])];
/// let b = [Shape::new([3, 3]), Shape::new([32])];
/// let ar: Vec<&Shape> = a.iter().collect();
/// let br: Vec<&Shape> = b.iter().collect();
/// assert_eq!(lp_match(&ar, &br), vec![(0, 0)]);
/// ```
pub fn lp_match(provider: &[&Shape], receiver: &[&Shape]) -> Vec<(usize, usize)> {
    provider
        .iter()
        .zip(receiver)
        .take_while(|(p, r)| p == r)
        .enumerate()
        .map(|(i, _)| (i, i))
        .collect()
}

/// Longest-common-subsequence matching (Wagner–Fischer dynamic programming
/// with backtracking). Returns the matched pairs in order; among maximal
/// matchings, ties break towards pairing earlier provider elements.
///
/// ```
/// use swt_core::lcs_match;
/// use swt_tensor::Shape;
/// // Receiver has one extra layer in the middle (the paper's Fig. 3):
/// // LCS still matches the trailing layer, which LP cannot reach.
/// let a = [Shape::new([8]), Shape::new([9])];
/// let b = [Shape::new([8]), Shape::new([4]), Shape::new([9])];
/// let ar: Vec<&Shape> = a.iter().collect();
/// let br: Vec<&Shape> = b.iter().collect();
/// assert_eq!(lcs_match(&ar, &br), vec![(0, 0), (1, 2)]);
/// ```
pub fn lcs_match(provider: &[&Shape], receiver: &[&Shape]) -> Vec<(usize, usize)> {
    let n = provider.len();
    let m = receiver.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // dp[i][j] = LCS length of provider[i..] vs receiver[j..], flattened.
    let w = m + 1;
    let mut dp = vec![0u32; (n + 1) * w];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i * w + j] = if provider[i] == receiver[j] {
                dp[(i + 1) * w + j + 1] + 1
            } else {
                dp[(i + 1) * w + j].max(dp[i * w + j + 1])
            };
        }
    }
    let mut pairs = Vec::with_capacity(dp[0] as usize);
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if provider[i] == receiver[j] && dp[i * w + j] == dp[(i + 1) * w + j + 1] + 1 {
            pairs.push((i, j));
            i += 1;
            j += 1;
        } else if dp[(i + 1) * w + j] >= dp[i * w + j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(dims: &[usize]) -> Vec<Shape> {
        dims.iter().map(|&d| Shape::new([d])).collect()
    }

    fn refs(v: &[Shape]) -> Vec<&Shape> {
        v.iter().collect()
    }

    /// Exponential brute-force LCS length for cross-checking.
    fn brute_lcs_len(a: &[&Shape], b: &[&Shape]) -> usize {
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        if a[0] == b[0] {
            1 + brute_lcs_len(&a[1..], &b[1..])
        } else {
            brute_lcs_len(&a[1..], b).max(brute_lcs_len(a, &b[1..]))
        }
    }

    #[test]
    fn lp_identical_sequences_match_fully() {
        let a = shapes(&[1, 2, 3]);
        let pairs = lp_match(&refs(&a), &refs(&a));
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn lp_stops_at_first_mismatch() {
        let a = shapes(&[1, 2, 3, 4]);
        let b = shapes(&[1, 2, 9, 4]);
        // Index 3 matches again, but LP cannot see past the mismatch —
        // exactly the paper's Fig. 3 (3) limitation.
        assert_eq!(lp_match(&refs(&a), &refs(&b)), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn lp_empty_prefix() {
        let a = shapes(&[5, 1]);
        let b = shapes(&[6, 1]);
        assert!(lp_match(&refs(&a), &refs(&b)).is_empty());
        assert!(lp_match(&refs(&a), &[]).is_empty());
    }

    #[test]
    fn lcs_handles_insertion() {
        // Receiver has one extra layer in the middle (Fig. 3's (2)): LCS
        // still transfers the trailing dense layer, LP does not.
        let provider = shapes(&[10, 20, 99]);
        let receiver = shapes(&[10, 20, 77, 99]);
        let lcs = lcs_match(&refs(&provider), &refs(&receiver));
        assert_eq!(lcs, vec![(0, 0), (1, 1), (2, 3)]);
        let lp = lp_match(&refs(&provider), &refs(&receiver));
        assert_eq!(lp.len(), 2);
    }

    #[test]
    fn lcs_pairs_are_strictly_increasing() {
        let a = shapes(&[1, 2, 1, 3, 2, 1]);
        let b = shapes(&[2, 1, 1, 2, 3, 3, 1]);
        let pairs = lcs_match(&refs(&a), &refs(&b));
        for win in pairs.windows(2) {
            assert!(win[0].0 < win[1].0 && win[0].1 < win[1].1, "{pairs:?}");
        }
        // Every pair matches equal shapes.
        for &(i, j) in &pairs {
            assert_eq!(a[i], b[j]);
        }
    }

    #[test]
    fn lcs_matches_brute_force_on_small_cases() {
        let cases: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![], vec![1, 2]),
            (vec![1, 1, 1], vec![1, 1]),
            (vec![1, 2, 3, 4, 5], vec![5, 4, 3, 2, 1]),
            (vec![1, 3, 2, 3, 1], vec![3, 1, 3, 3, 2]),
            (vec![2, 2, 2], vec![2, 2, 2, 2]),
        ];
        for (a, b) in cases {
            let a = shapes(&a);
            let b = shapes(&b);
            let fast = lcs_match(&refs(&a), &refs(&b)).len();
            let slow = brute_lcs_len(&refs(&a), &refs(&b));
            assert_eq!(fast, slow, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn lp_is_subset_of_lcs() {
        // "Note that LP is a subset of LCS, therefore LCS will always
        // transfer at least as many tensors as LP." (Section IV-A)
        let a = shapes(&[7, 7, 2, 9, 4, 4]);
        let b = shapes(&[7, 7, 9, 4, 1, 4]);
        let lp = lp_match(&refs(&a), &refs(&b));
        let lcs = lcs_match(&refs(&a), &refs(&b));
        assert!(lcs.len() >= lp.len());
        // The LP pairs are literally contained in the LCS matching here.
        for p in &lp {
            assert!(lcs.contains(p), "{p:?} missing from {lcs:?}");
        }
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(TransferScheme::Baseline.matcher(), None);
        assert_eq!(TransferScheme::Lp.matcher(), Some(Matcher::Lp));
        assert_eq!(TransferScheme::Lcs.matcher(), Some(Matcher::Lcs));
        assert_eq!(TransferScheme::all().len(), 3);
        assert_eq!(TransferScheme::Lcs.name(), "LCS");
    }

    #[test]
    fn matcher_dispatch() {
        let a = shapes(&[1, 9, 2]);
        let b = shapes(&[1, 2]);
        assert_eq!(Matcher::Lp.match_shapes(&refs(&a), &refs(&b)).len(), 1);
        assert_eq!(Matcher::Lcs.match_shapes(&refs(&a), &refs(&b)).len(), 2);
    }
}
