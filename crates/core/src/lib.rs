//! Selective weight transfer for NAS — the paper's primary contribution.
//!
//! New candidate models are initialised from the weights of a previously
//! evaluated *provider* model instead of from random weights. Which tensors
//! move is decided by matching the two models' **shape sequences** — the
//! ordered list of trainable-parameter tensor shapes (Fig. 3) — with one of
//! two string-matching heuristics (Section IV):
//!
//! * [`Matcher::Lp`] — **longest prefix**: transfer the maximal run of
//!   leading tensors with identical shapes. `O(min(n, m))`. Conservative:
//!   early layers learn coarse, shareable features.
//! * [`Matcher::Lcs`] — **longest common subsequence** via Wagner–Fischer
//!   dynamic programming, `O(nm)`. Handles layer insertions/deletions, so it
//!   always transfers at least as many tensors as LP.
//!
//! Provider selection (Section V) uses the architecture-sequence distance
//! `d`: transfer from a provider with small `d` is likely beneficial;
//! integrated with regularized evolution the mutation parent (`d = 1`) is
//! always the provider. [`select_nearest`] implements the general
//! nearest-provider scan for other strategies.

pub mod matcher;
pub mod plan;
pub mod select;
pub mod shape_seq;
pub mod transfer;

pub use matcher::{lcs_match, lp_match, Matcher, TransferScheme};
pub use plan::TransferPlan;
pub use select::{select_nearest, PoolEntry};
pub use shape_seq::{ShapeEntry, ShapeSeq};
pub use transfer::{apply_transfer, TransferStats};
