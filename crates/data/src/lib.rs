//! Synthetic dataset generators standing in for the paper's applications.
//!
//! The paper evaluates on CIFAR-10, MNIST, NT3 (RNA-seq tumor classification,
//! ECP CANDLE) and Uno (multi-source drug-response regression, ECP CANDLE).
//! None of those datasets is available here, and CPU training budgets rule
//! out their full dimensions, so each is replaced by a *seeded synthetic
//! generator with the same problem shape* (see DESIGN.md §1):
//!
//! | App | Paper | Here |
//! |---|---|---|
//! | CIFAR-10 | 50k+10k 32×32×3, 10 classes, CE/accuracy | 12×12×3 images, 10 classes |
//! | MNIST | 60k+10k 28×28×1, 10 classes, CE/accuracy | 10×10×1 images, 10 classes |
//! | NT3 | 1,120+280 × 60,483, 2 classes, CE/accuracy | few samples × 512-wide 1-D sequences (keeps n ≪ d) |
//! | Uno | 9,588+2,397 across 4 sources, MAE/R² | 4 sources of widths 1/96/160/64, shared latent factors |
//!
//! Class structure comes from smooth random prototypes plus Gaussian noise,
//! so convolutional/dense candidates genuinely differ in attainable
//! validation scores — the property all of the paper's experiments measure.

pub mod apps;
pub mod synthetic;

pub use apps::{AppKind, AppProblem, DataScale};
pub use synthetic::{image_classification, multi_source_regression, sequence_classification};
