//! Low-level synthetic problem generators.
//!
//! All generators are deterministic in their seed, produce a train/validation
//! pair drawn from the same distribution, and are constructed to be
//! *learnable but not trivial*: class prototypes are smooth random fields so
//! convolutions help, noise keeps single-epoch accuracy well below the
//! ceiling, and regression targets are nonlinear in latent factors shared
//! across input sources.

use swt_nn::Dataset;
use swt_tensor::{Rng, Tensor};

/// A smooth random 2-D field built from a few random sinusoids, one value per
/// `(y, x, c)`. Low-frequency structure is what convolutional filters can
/// pick up, mirroring natural-image statistics at a cartoon level.
fn smooth_field_2d(h: usize, w: usize, c: usize, waves: usize, rng: &mut Rng) -> Vec<f32> {
    let mut field = vec![0.0f32; h * w * c];
    for _ in 0..waves {
        let fy = rng.uniform(0.5, 2.5);
        let fx = rng.uniform(0.5, 2.5);
        let phase = rng.uniform(0.0, std::f32::consts::TAU);
        let amp = rng.uniform(0.4, 1.0);
        let chan = rng.below(c);
        for y in 0..h {
            for x in 0..w {
                let v = amp
                    * (fy * y as f32 / h as f32 * std::f32::consts::TAU
                        + fx * x as f32 / w as f32 * std::f32::consts::TAU
                        + phase)
                        .sin();
                field[(y * w + x) * c + chan] += v;
            }
        }
    }
    field
}

/// Smooth random 1-D profile (NT3's gene-expression stand-in).
fn smooth_field_1d(w: usize, waves: usize, rng: &mut Rng) -> Vec<f32> {
    let mut field = vec![0.0f32; w];
    for _ in 0..waves {
        let f = rng.uniform(0.5, 6.0);
        let phase = rng.uniform(0.0, std::f32::consts::TAU);
        let amp = rng.uniform(0.4, 1.0);
        for (x, v) in field.iter_mut().enumerate() {
            *v += amp * (f * x as f32 / w as f32 * std::f32::consts::TAU + phase).sin();
        }
    }
    field
}

/// One-hot encode labels.
fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut data = vec![0.0f32; labels.len() * classes];
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < classes);
        data[i * classes + l] = 1.0;
    }
    Tensor::from_vec([labels.len(), classes], data)
}

/// Multi-class image classification: `classes` smooth prototypes of shape
/// `(h, w, c)`; each sample is its class prototype plus i.i.d. Gaussian noise
/// of standard deviation `noise`. Returns `(train, val)`.
#[allow(clippy::too_many_arguments)]
pub fn image_classification(
    train_n: usize,
    val_n: usize,
    h: usize,
    w: usize,
    c: usize,
    classes: usize,
    noise: f32,
    seed: u64,
) -> (Dataset, Dataset) {
    let mut rng = Rng::seed(seed);
    let prototypes: Vec<Vec<f32>> =
        (0..classes).map(|_| smooth_field_2d(h, w, c, 6, &mut rng)).collect();
    let make = |n: usize, rng: &mut Rng| {
        let mut xs = Vec::with_capacity(n * h * w * c);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % classes; // balanced classes
            labels.push(class);
            for &p in &prototypes[class] {
                xs.push(p + noise * rng.normal());
            }
        }
        Dataset::new(vec![Tensor::from_vec([n, h, w, c], xs)], one_hot(&labels, classes))
    };
    let train = make(train_n, &mut rng);
    let val = make(val_n, &mut rng);
    (train, val)
}

/// Binary (or k-ary) wide-sequence classification with few samples — the
/// NT3-like regime where the sample count is far below the input width, so
/// validation scores fluctuate heavily (Section VIII-A discusses this).
pub fn sequence_classification(
    train_n: usize,
    val_n: usize,
    width: usize,
    classes: usize,
    noise: f32,
    seed: u64,
) -> (Dataset, Dataset) {
    let mut rng = Rng::seed(seed);
    let prototypes: Vec<Vec<f32>> =
        (0..classes).map(|_| smooth_field_1d(width, 8, &mut rng)).collect();
    let make = |n: usize, rng: &mut Rng| {
        let mut xs = Vec::with_capacity(n * width);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % classes;
            labels.push(class);
            for &p in &prototypes[class] {
                xs.push(p + noise * rng.normal());
            }
        }
        Dataset::new(vec![Tensor::from_vec([n, width, 1], xs)], one_hot(&labels, classes))
    };
    let train = make(train_n, &mut rng);
    let val = make(val_n, &mut rng);
    (train, val)
}

/// Multi-source regression: `k` latent factors per sample; each input source
/// is a random linear embedding of the latents plus noise; the target is a
/// smooth nonlinear function of the latents, standardised to zero mean / unit
/// variance. This mirrors Uno's structure: four heterogeneous views of the
/// same underlying biology predicting one response.
pub fn multi_source_regression(
    train_n: usize,
    val_n: usize,
    source_widths: &[usize],
    latents: usize,
    noise: f32,
    seed: u64,
) -> (Dataset, Dataset) {
    assert!(!source_widths.is_empty());
    let mut rng = Rng::seed(seed);
    // Fixed random embeddings per source: width × latents.
    let embeddings: Vec<Vec<f32>> = source_widths
        .iter()
        .map(|&w| (0..w * latents).map(|_| rng.normal() / (latents as f32).sqrt()).collect())
        .collect();
    // Nonlinear target coefficients.
    let lin: Vec<f32> = (0..latents).map(|_| rng.normal()).collect();
    let pairwise: Vec<f32> = (0..latents).map(|_| 0.5 * rng.normal()).collect();

    let make = |n: usize, rng: &mut Rng| {
        let mut sources: Vec<Vec<f32>> =
            source_widths.iter().map(|&w| Vec::with_capacity(n * w)).collect();
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let z: Vec<f32> = (0..latents).map(|_| rng.normal()).collect();
            for (src, (emb, &w)) in sources.iter_mut().zip(embeddings.iter().zip(source_widths)) {
                for row in 0..w {
                    let mut v = 0.0f32;
                    for (j, &zj) in z.iter().enumerate() {
                        v += emb[row * latents + j] * zj;
                    }
                    src.push(v + noise * rng.normal());
                }
            }
            let mut y = 0.0f32;
            for j in 0..latents {
                y += lin[j] * z[j] + pairwise[j] * (z[j] * z[(j + 1) % latents]).tanh();
            }
            targets.push(y + noise * rng.normal());
        }
        // Standardise the target.
        let mean = targets.iter().sum::<f32>() / n as f32;
        let var = targets.iter().map(|t| (t - mean) * (t - mean)).sum::<f32>() / n as f32;
        let std = var.sqrt().max(1e-6);
        for t in &mut targets {
            *t = (*t - mean) / std;
        }
        let inputs: Vec<Tensor> = sources
            .into_iter()
            .zip(source_widths)
            .map(|(s, &w)| Tensor::from_vec([n, w], s))
            .collect();
        Dataset::new(inputs, Tensor::from_vec([n, 1], targets))
    };
    let train = make(train_n, &mut rng);
    let val = make(val_n, &mut rng);
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swt_nn::AdamConfig;
    use swt_nn::{Activation, LayerSpec, Loss, Metric, Model, ModelSpec, TrainConfig, Trainer};

    #[test]
    fn image_dataset_shapes_and_determinism() {
        let (train, val) = image_classification(20, 10, 8, 8, 3, 10, 0.5, 7);
        assert_eq!(train.len(), 20);
        assert_eq!(val.len(), 10);
        assert_eq!(train.inputs()[0].shape().dims(), &[20, 8, 8, 3]);
        assert_eq!(train.targets().shape().dims(), &[20, 10]);
        let (train2, _) = image_classification(20, 10, 8, 8, 3, 10, 0.5, 7);
        assert!(train.inputs()[0].approx_eq(&train2.inputs()[0], 0.0));
        let (train3, _) = image_classification(20, 10, 8, 8, 3, 10, 0.5, 8);
        assert!(!train.inputs()[0].approx_eq(&train3.inputs()[0], 0.0));
    }

    #[test]
    fn image_classes_are_balanced() {
        let (train, _) = image_classification(30, 10, 4, 4, 1, 3, 0.1, 1);
        let labels = train.targets().row_argmax();
        for class in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == class).count(), 10);
        }
    }

    #[test]
    fn image_problem_is_learnable() {
        let (train, val) = image_classification(128, 64, 6, 6, 1, 4, 0.6, 3);
        let spec = ModelSpec::chain(
            vec![6, 6, 1],
            vec![
                LayerSpec::Flatten,
                LayerSpec::Dense { units: 16, activation: Some(Activation::Relu) },
                LayerSpec::Dense { units: 4, activation: None },
            ],
        )
        .unwrap();
        let mut model = Model::build(&spec, 5).unwrap();
        let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 32,
            adam: AdamConfig { lr: 0.01, ..Default::default() },
            ..Default::default()
        };
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert!(report.final_metric > 0.7, "val accuracy {}", report.final_metric);
    }

    #[test]
    fn sequence_dataset_is_wide_and_small() {
        let (train, val) = sequence_classification(32, 8, 256, 2, 1.0, 2);
        assert_eq!(train.inputs()[0].shape().dims(), &[32, 256, 1]);
        assert_eq!(val.len(), 8);
        // n << d, the NT3 regime.
        assert!(train.len() < 256);
    }

    #[test]
    fn regression_sources_and_target_shape() {
        let widths = [1, 16, 24, 8];
        let (train, val) = multi_source_regression(64, 16, &widths, 4, 0.1, 9);
        assert_eq!(train.inputs().len(), 4);
        for (t, &w) in train.inputs().iter().zip(&widths) {
            assert_eq!(t.shape().dims(), &[64, w]);
        }
        assert_eq!(train.targets().shape().dims(), &[64, 1]);
        assert_eq!(val.len(), 16);
        // Standardised target.
        let mean = train.targets().mean();
        assert!(mean.abs() < 1e-4, "target mean {mean}");
    }

    #[test]
    fn regression_problem_is_learnable() {
        let widths = [1, 16, 24, 8];
        let (train, val) = multi_source_regression(256, 64, &widths, 4, 0.05, 11);
        // Concatenate sources -> dense head.
        let nodes = vec![
            swt_nn::NodeSpec::Input { shape: vec![1] },
            swt_nn::NodeSpec::Input { shape: vec![16] },
            swt_nn::NodeSpec::Input { shape: vec![24] },
            swt_nn::NodeSpec::Input { shape: vec![8] },
            swt_nn::NodeSpec::Layer { op: LayerSpec::Concat, inputs: vec![0, 1, 2, 3] },
            swt_nn::NodeSpec::Layer {
                op: LayerSpec::Dense { units: 32, activation: Some(Activation::Relu) },
                inputs: vec![4],
            },
            swt_nn::NodeSpec::Layer {
                op: LayerSpec::Dense { units: 1, activation: None },
                inputs: vec![5],
            },
        ];
        let spec = ModelSpec::new(nodes, 6).unwrap();
        let mut model = Model::build(&spec, 13).unwrap();
        let trainer = Trainer::new(Loss::MeanAbsoluteError, Metric::RSquared);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            adam: AdamConfig { lr: 0.01, ..Default::default() },
            ..Default::default()
        };
        let report = trainer.fit(&mut model, &train, &val, &cfg);
        assert!(report.final_metric > 0.5, "val R² {}", report.final_metric);
    }

    #[test]
    fn noise_controls_difficulty() {
        // With extreme noise, a quick probe should score worse than with
        // little noise.
        let run = |noise: f32| {
            let (train, val) = image_classification(96, 48, 6, 6, 1, 4, noise, 21);
            let spec = ModelSpec::chain(
                vec![6, 6, 1],
                vec![
                    LayerSpec::Flatten,
                    LayerSpec::Dense { units: 8, activation: Some(Activation::Relu) },
                    LayerSpec::Dense { units: 4, activation: None },
                ],
            )
            .unwrap();
            let mut model = Model::build(&spec, 1).unwrap();
            let trainer = Trainer::new(Loss::CategoricalCrossEntropy, Metric::Accuracy);
            let cfg = TrainConfig {
                epochs: 8,
                batch_size: 32,
                adam: AdamConfig { lr: 0.01, ..Default::default() },
                ..Default::default()
            };
            trainer.fit(&mut model, &train, &val, &cfg).final_metric
        };
        let easy = run(0.2);
        let hard = run(4.0);
        assert!(easy > hard, "easy {easy} must beat hard {hard}");
    }
}
