//! The four evaluated applications and their problem metadata (Table I).

use crate::synthetic;
use swt_nn::{Dataset, EarlyStop, Loss, Metric};

/// Dataset scale preset: `Quick` keeps CI runs fast; `Full` approaches the
/// (already reduced) paper-shaped sizes from DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataScale {
    /// Small sizes for tests and smoke runs.
    Quick,
    /// The repository's full experiment sizes.
    Full,
}

/// The four applications of the paper's evaluation (Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// CIFAR-10-like: 3-channel image classification, VGG-block search space.
    Cifar10,
    /// MNIST-like: 1-channel image classification, LeNet-5-style space.
    Mnist,
    /// NT3-like: wide 1-D sequence binary classification with few samples.
    Nt3,
    /// Uno-like: four-source tabular regression scored by R².
    Uno,
}

/// Everything an evaluator needs to train and score candidates of one
/// application: data, loss, objective metric and the paper's per-app
/// hyperparameters.
#[derive(Debug, Clone)]
pub struct AppProblem {
    pub kind: AppKind,
    pub train: Dataset,
    pub val: Dataset,
    pub loss: Loss,
    pub metric: Metric,
    /// Mini-batch size (paper: 64 for CIFAR-10/MNIST, 32 for NT3/Uno).
    pub batch_size: usize,
    /// Early-stopping threshold for full training (paper Section VIII-B).
    pub early_stop: EarlyStop,
    /// Adam learning rate. The paper uses 1e-3 throughout; our datasets are
    /// ~30× smaller, so one epoch contains ~30× fewer optimizer steps. We
    /// compensate with a larger step size so a one-epoch estimate moves the
    /// weights a comparable total distance (documented in DESIGN.md).
    pub lr: f32,
}

impl AppKind {
    /// All four applications, in the paper's presentation order.
    pub fn all() -> [AppKind; 4] {
        [AppKind::Cifar10, AppKind::Mnist, AppKind::Nt3, AppKind::Uno]
    }

    /// Application name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Cifar10 => "CIFAR-10",
            AppKind::Mnist => "MNIST",
            AppKind::Nt3 => "NT3",
            AppKind::Uno => "Uno",
        }
    }

    /// Lowercase identifier used on command lines and in file names.
    pub fn slug(self) -> &'static str {
        match self {
            AppKind::Cifar10 => "cifar10",
            AppKind::Mnist => "mnist",
            AppKind::Nt3 => "nt3",
            AppKind::Uno => "uno",
        }
    }

    /// Parse a [`AppKind::slug`] or paper-table name, case-insensitively.
    pub fn from_slug(s: &str) -> Option<AppKind> {
        match s.to_ascii_lowercase().as_str() {
            "cifar10" | "cifar-10" => Some(AppKind::Cifar10),
            "mnist" => Some(AppKind::Mnist),
            "nt3" => Some(AppKind::Nt3),
            "uno" => Some(AppKind::Uno),
            _ => None,
        }
    }

    /// Per-sample input shapes, in model-input order.
    pub fn input_shapes(self) -> Vec<Vec<usize>> {
        match self {
            AppKind::Cifar10 => vec![vec![12, 12, 3]],
            AppKind::Mnist => vec![vec![10, 10, 1]],
            AppKind::Nt3 => vec![vec![512, 1]],
            AppKind::Uno => vec![vec![1], vec![96], vec![160], vec![64]],
        }
    }

    /// Output width (classes, or 1 for regression).
    pub fn output_width(self) -> usize {
        match self {
            AppKind::Cifar10 | AppKind::Mnist => 10,
            AppKind::Nt3 => 2,
            AppKind::Uno => 1,
        }
    }

    /// Training loss (Table I).
    pub fn loss(self) -> Loss {
        match self {
            AppKind::Uno => Loss::MeanAbsoluteError,
            _ => Loss::CategoricalCrossEntropy,
        }
    }

    /// Objective metric (Table I).
    pub fn metric(self) -> Metric {
        match self {
            AppKind::Uno => Metric::RSquared,
            _ => Metric::Accuracy,
        }
    }

    /// Mini-batch size (Section VII-A).
    pub fn batch_size(self) -> usize {
        match self {
            AppKind::Cifar10 | AppKind::Mnist => 64,
            AppKind::Nt3 | AppKind::Uno => 32,
        }
    }

    /// Early-stopping threshold for full training (Section VIII-B), with the
    /// paper's patience of two epochs.
    pub fn early_stop(self) -> EarlyStop {
        let threshold = match self {
            AppKind::Nt3 => 0.005,
            AppKind::Mnist => 0.001,
            AppKind::Cifar10 => 0.01,
            AppKind::Uno => 0.02,
        };
        EarlyStop::paper(threshold)
    }

    /// Compensated Adam learning rate (see [`AppProblem::lr`]).
    pub fn lr(self) -> f32 {
        match self {
            AppKind::Cifar10 | AppKind::Mnist => 0.01,
            AppKind::Nt3 => 0.005,
            AppKind::Uno => 0.01,
        }
    }

    /// `(train_n, val_n)` at a scale.
    pub fn sizes(self, scale: DataScale) -> (usize, usize) {
        match (self, scale) {
            (AppKind::Cifar10, DataScale::Quick) => (384, 128),
            (AppKind::Cifar10, DataScale::Full) => (1536, 384),
            (AppKind::Mnist, DataScale::Quick) => (384, 128),
            (AppKind::Mnist, DataScale::Full) => (1536, 384),
            (AppKind::Nt3, DataScale::Quick) => (160, 64),
            (AppKind::Nt3, DataScale::Full) => (384, 128),
            (AppKind::Uno, DataScale::Quick) => (320, 96),
            (AppKind::Uno, DataScale::Full) => (1024, 256),
        }
    }

    /// Generate the application's train/validation datasets.
    pub fn datasets(self, scale: DataScale, seed: u64) -> (Dataset, Dataset) {
        let (train_n, val_n) = self.sizes(scale);
        match self {
            AppKind::Cifar10 => {
                synthetic::image_classification(train_n, val_n, 12, 12, 3, 10, 2.0, seed)
            }
            AppKind::Mnist => {
                // Lower noise: the paper notes "it is very easy to get high
                // accuracy in MNIST".
                synthetic::image_classification(train_n, val_n, 10, 10, 1, 10, 0.5, seed)
            }
            AppKind::Nt3 => synthetic::sequence_classification(train_n, val_n, 512, 2, 8.0, seed),
            AppKind::Uno => {
                synthetic::multi_source_regression(train_n, val_n, &[1, 96, 160, 64], 6, 0.35, seed)
            }
        }
    }

    /// Bundle data + metadata into an [`AppProblem`].
    pub fn problem(self, scale: DataScale, seed: u64) -> AppProblem {
        let (train, val) = self.datasets(scale, seed);
        AppProblem {
            kind: self,
            train,
            val,
            loss: self.loss(),
            metric: self.metric(),
            batch_size: self.batch_size(),
            early_stop: self.early_stop(),
            lr: self.lr(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata() {
        assert_eq!(AppKind::Cifar10.batch_size(), 64);
        assert_eq!(AppKind::Nt3.batch_size(), 32);
        assert_eq!(AppKind::Uno.loss(), Loss::MeanAbsoluteError);
        assert_eq!(AppKind::Uno.metric(), Metric::RSquared);
        assert_eq!(AppKind::Mnist.loss(), Loss::CategoricalCrossEntropy);
        assert_eq!(AppKind::Cifar10.early_stop().threshold, 0.01);
        assert_eq!(AppKind::Mnist.early_stop().threshold, 0.001);
        assert_eq!(AppKind::Nt3.early_stop().threshold, 0.005);
        assert_eq!(AppKind::Uno.early_stop().threshold, 0.02);
        assert_eq!(AppKind::Cifar10.early_stop().patience, 2);
    }

    #[test]
    fn problems_have_consistent_shapes() {
        for kind in AppKind::all() {
            let p = kind.problem(DataScale::Quick, 42);
            assert_eq!(p.train.inputs().len(), kind.input_shapes().len(), "{}", kind.name());
            for (t, shape) in p.train.inputs().iter().zip(kind.input_shapes()) {
                assert_eq!(&t.shape().dims()[1..], shape.as_slice(), "{}", kind.name());
            }
            assert_eq!(p.train.targets().shape().dim(1), kind.output_width());
            let (tn, vn) = kind.sizes(DataScale::Quick);
            assert_eq!(p.train.len(), tn);
            assert_eq!(p.val.len(), vn);
        }
    }

    #[test]
    fn datasets_are_seed_deterministic() {
        for kind in AppKind::all() {
            let (a, _) = kind.datasets(DataScale::Quick, 5);
            let (b, _) = kind.datasets(DataScale::Quick, 5);
            assert!(a.inputs()[0].approx_eq(&b.inputs()[0], 0.0), "{}", kind.name());
            assert!(a.targets().approx_eq(b.targets(), 0.0));
        }
    }

    #[test]
    fn nt3_is_the_small_wide_regime() {
        let p = AppKind::Nt3.problem(DataScale::Full, 1);
        let n = p.train.len();
        let d = p.train.inputs()[0].shape().dim(1);
        assert!(n < d, "NT3 must keep n ({n}) << d ({d})");
        assert_eq!(p.train.targets().shape().dim(1), 2);
    }

    #[test]
    fn full_scale_is_larger_than_quick() {
        for kind in AppKind::all() {
            let (tq, vq) = kind.sizes(DataScale::Quick);
            let (tf, vf) = kind.sizes(DataScale::Full);
            assert!(tf > tq && vf >= vq, "{}", kind.name());
        }
    }
}
