//! `RunReport::merge` algebra: counter and pow2-histogram merges must be
//! associative and commutative (so folding worker snapshots in arrival
//! order is well-defined), and a merged report must survive the JSON
//! round-trip unchanged — report.json for a multi-process run is produced
//! exactly this way.

use swt_obs::report::{CounterRow, GaugeRow, HistogramRow, SpanRow};
use swt_obs::{Registry, RunReport};

fn report_a() -> RunReport {
    RunReport {
        meta: vec![],
        spans: vec![SpanRow {
            path: "nas.eval".into(),
            worker: Some(0),
            count: 3,
            total_secs: 1.5,
            min_secs: 0.25,
            max_secs: 0.75,
        }],
        counters: vec![
            // Already in canonical (name-sorted) order, as capture produces.
            CounterRow { name: "ckpt.bytes".into(), value: 4096 },
            CounterRow { name: "gemm.calls".into(), value: 100 },
        ],
        gauges: vec![GaugeRow { name: "cache.resident".into(), value: 10, max: 20 }],
        histograms: vec![HistogramRow {
            name: "save_ns".into(),
            count: 4,
            sum: 1000,
            buckets: vec![(255, 3), (511, 1)],
        }],
    }
}

fn report_b() -> RunReport {
    RunReport {
        meta: vec![],
        spans: vec![SpanRow {
            path: "nas.eval".into(),
            worker: Some(1),
            count: 2,
            total_secs: 0.8,
            min_secs: 0.1,
            max_secs: 0.7,
        }],
        counters: vec![
            CounterRow { name: "gemm.calls".into(), value: 40 },
            CounterRow { name: "cache.hits".into(), value: 7 },
        ],
        gauges: vec![GaugeRow { name: "cache.resident".into(), value: 5, max: 9 }],
        histograms: vec![HistogramRow {
            name: "save_ns".into(),
            count: 2,
            sum: 600,
            buckets: vec![(255, 1), (1023, 1)],
        }],
    }
}

fn report_c() -> RunReport {
    RunReport {
        counters: vec![CounterRow { name: "ckpt.bytes".into(), value: 1 }],
        histograms: vec![HistogramRow {
            name: "save_ns".into(),
            count: 1,
            sum: 9,
            buckets: vec![(15, 1)],
        }],
        ..RunReport::default()
    }
}

fn merged(parts: &[&RunReport]) -> RunReport {
    let mut out = RunReport::default();
    for p in parts {
        out.merge(p);
    }
    out
}

#[test]
fn counter_totals_are_conserved() {
    let m = merged(&[&report_a(), &report_b()]);
    assert_eq!(m.counter("gemm.calls"), 140, "sum over processes");
    assert_eq!(m.counter("ckpt.bytes"), 4096, "one-sided counters survive");
    assert_eq!(m.counter("cache.hits"), 7);
    let h = m.histograms.iter().find(|h| h.name == "save_ns").unwrap();
    assert_eq!((h.count, h.sum), (6, 1600));
    assert_eq!(h.buckets, vec![(255, 4), (511, 1), (1023, 1)]);
    // Per-worker span rows stay distinct; shared-path totals aggregate.
    assert_eq!(m.span_total_secs("nas.eval"), 1.5 + 0.8);
    assert_eq!(m.workers(), vec![0, 1]);
}

#[test]
fn merge_is_commutative() {
    let ab = merged(&[&report_a(), &report_b()]);
    let ba = merged(&[&report_b(), &report_a()]);
    assert_eq!(ab, ba);
}

#[test]
fn merge_is_associative() {
    let left = {
        let mut ab = merged(&[&report_a(), &report_b()]);
        ab.merge(&report_c());
        ab
    };
    let right = {
        let bc = merged(&[&report_b(), &report_c()]);
        let mut a = report_a();
        a.merge(&bc);
        a
    };
    assert_eq!(left, right);
}

#[test]
fn merging_an_empty_report_is_identity() {
    let mut a = report_a();
    a.merge(&RunReport::default());
    assert_eq!(a, report_a());
    let mut e = RunReport::default();
    e.merge(&report_a());
    assert_eq!(e, report_a());
}

#[test]
fn merged_report_round_trips_through_json() {
    let mut m = merged(&[&report_a(), &report_b(), &report_c()]);
    m.meta.push(("mode".into(), "dist-run".into()));
    let back = RunReport::from_json(&m.to_json()).unwrap();
    assert_eq!(back, m, "serialize -> parse must be lossless for merged reports");
}

#[test]
fn absorb_into_registry_matches_pure_merge() {
    // The registry absorb path (coordinator merging worker snapshots into
    // its live registry) must agree with the pure RunReport::merge totals.
    let reg = Registry::new();
    for part in [&report_a(), &report_b(), &report_c()] {
        part.absorb_into(&reg);
    }
    let pure = merged(&[&report_a(), &report_b(), &report_c()]);
    for c in &pure.counters {
        assert_eq!(reg.counter(&c.name).get(), c.value, "counter {} diverged", c.name);
    }
    for h in &pure.histograms {
        let live = reg.histogram(&h.name);
        assert_eq!((live.count(), live.sum()), (h.count, h.sum), "histogram {} diverged", h.name);
    }
}

#[test]
fn gauge_merge_sums_values_and_watermarks() {
    let m = merged(&[&report_a(), &report_b()]);
    let g = m.gauges.iter().find(|g| g.name == "cache.resident").unwrap();
    assert_eq!((g.value, g.max), (15, 29));
}
