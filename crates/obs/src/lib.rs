//! Std-only observability for the selective-weight-transfer stack.
//!
//! The paper's evaluation (Figs. 7–11) is built on time attribution: where
//! each candidate evaluation spends its wall clock (training vs. weight
//! transfer vs. checkpoint I/O) and how that splits across evaluator
//! workers. This crate is the measurement layer behind those claims:
//!
//! * **Span timers** — [`span!`] returns an RAII guard that records the
//!   elapsed wall time of a scope into a process-wide registry, keyed by the
//!   hierarchical dotted path of all enclosing spans on the same thread
//!   (`"nas.eval"` inside `"nas.eval"` → `"nas.eval.train"`). Totals are
//!   kept per evaluator worker (see [`span::set_worker`]).
//! * **Counters, histograms, gauges** — [`counter!`], [`histogram!`] and
//!   [`gauge!`] resolve a named metric once per call site (a `OnceLock`
//!   handle) and then mutate lock-free atomics.
//! * **Structured logging** — [`error!`] … [`trace!`] write leveled
//!   messages to stderr and, when configured, to a JSONL sink; the level is
//!   read from `SWT_LOG` (default `info`).
//! * **Run reports** — [`RunReport::capture`] snapshots the registry into a
//!   serializable per-worker breakdown written as `report.json` next to the
//!   NAS trace CSV.
//! * **Event timeline** — [`timeline`] keeps individual span completions
//!   and [`event!`] counter-delta marks in bounded per-worker-slot rings,
//!   drainable as deltas-since-seq and exportable as Chrome `trace_event`
//!   JSON. Off by default behind its own switch on top of [`enabled`].
//! * **Live endpoints** — [`serve`] is a tiny single-threaded HTTP
//!   listener (`/status`, `/metrics`, `/trace`) over any [`serve::ServeSource`],
//!   used by `swt dist-run --serve` and `swt dist-top`.
//!
//! Instrumentation is **disabled by default** and must stay off the tensor
//! hot path: every recording primitive first checks one relaxed atomic load
//! ([`enabled`]) and does nothing else when the switch is off. `bench_obs`
//! (crate `swt-bench`) regresses this overhead budget (< 2% of a training
//! batch).

pub mod json;
pub mod log;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod serve;
pub mod span;
pub mod timeline;

pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::Registry;
pub use report::RunReport;
pub use serve::{ObsServer, ServeSource};
pub use span::SpanGuard;
pub use timeline::TimelineEvent;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metric/span recording on (logging is governed by level, not this).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn metric/span recording off; existing values are kept.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans/counters/histograms/gauges record anything. One relaxed
/// load — this is the entire disabled-path cost of every primitive.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every registered span/counter/histogram/gauge **in place**.
///
/// Identities survive a reset: handles cached by call sites (and the
/// thread-local span cache) stay valid, so this is safe to call between
/// back-to-back NAS runs to get per-run reports.
pub fn reset() {
    registry::global().reset();
}

/// Time the enclosing scope under `name` (a `&'static str` path segment).
///
/// ```
/// {
///     let _g = swt_obs::span!("nas.eval");
///     // … the guard records the elapsed time when it drops …
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

/// Record a counter-delta mark on the event timeline, attributed to the
/// current thread's worker. Two relaxed loads when the timeline (or all
/// instrumentation) is off; unlike [`counter!`] this records a discrete
/// *event* (when/where), not an aggregate.
///
/// ```
/// swt_obs::event!("nas.dispatch", 1);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr, $delta:expr) => {
        $crate::timeline::mark($name, $delta)
    };
}

/// Resolve (once per call site) a named [`Counter`].
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Counter>> =
            std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry::global().counter($name))
    }};
}

/// Resolve (once per call site) a named [`Histogram`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Histogram>> =
            std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry::global().histogram($name))
    }};
}

/// Resolve (once per call site) a named [`Gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<std::sync::Arc<$crate::metrics::Gauge>> =
            std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::registry::global().gauge($name))
    }};
}

/// Serializes tests that toggle the process-global enabled switch or read
/// the global registry; the cargo test harness runs tests concurrently.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn enable_disable_round_trip() {
        let _lock = super::test_lock();
        super::enable();
        assert!(super::enabled());
        super::disable();
        assert!(!super::enabled());
    }
}
