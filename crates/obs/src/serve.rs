//! `swt-obs-serve`: a tiny std-only HTTP endpoint for live runs.
//!
//! One background thread, one connection at a time, three routes:
//!
//! * `/status`  — JSON snapshot of the serving source (for `swt dist-top`)
//! * `/metrics` — Prometheus text exposition of counters/gauges/histograms
//! * `/trace`   — Chrome `trace_event` JSON (load in `chrome://tracing`)
//!
//! The server renders whatever a [`ServeSource`] gives it; the coordinator
//! plugs in its LiveRunView, and [`RegistrySource`] serves the
//! process-global registry for single-process runs. Handlers are pull-only
//! — serving never mutates run state, so an attached monitor cannot
//! perturb a deterministic run. Like the rest of the wire stack this file
//! must stay free of `unwrap`/`expect`/`panic!` (CI greps for them): every
//! I/O failure drops the connection, never the run.

use crate::report::RunReport;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Longest request head (request line + headers) the server reads.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// What a live endpoint serves. Implementations must be cheap-ish and
/// self-consistent per call; the server calls one method per request.
pub trait ServeSource: Send + Sync {
    /// Body for `/status` (a JSON document).
    fn status_json(&self) -> String;
    /// Body for `/metrics` (Prometheus text exposition format).
    fn metrics_text(&self) -> String;
    /// Body for `/trace` (Chrome `trace_event` JSON).
    fn trace_json(&self) -> String;
}

/// Serves the process-global registry and timeline — the source for
/// single-process runs where there is no coordinator view.
#[derive(Debug, Default)]
pub struct RegistrySource;

impl ServeSource for RegistrySource {
    fn status_json(&self) -> String {
        RunReport::capture().to_json()
    }

    fn metrics_text(&self) -> String {
        prometheus_text(&RunReport::capture())
    }

    fn trace_json(&self) -> String {
        crate::timeline::process_trace_json()
    }
}

/// Handle to a running listener; stops (and joins) on drop.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// the accept loop on a background thread.
    pub fn start(bind: &str, source: Arc<dyn ServeSource>) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::spawn(move || serve_loop(&listener, &*source, &flag));
        Ok(ObsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the accept loop to exit and wait for it.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: &TcpListener, source: &dyn ServeSource, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One connection at a time; a slow or hostile client can
                // stall the monitor for IO_TIMEOUT, never the run.
                let _ = handle_conn(stream, source);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, source: &dyn ServeSource) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let path = match read_request_path(&mut stream)? {
        Some(path) => path,
        None => return Ok(()),
    };
    let (status, content_type, body) = match path.as_str() {
        "/status" | "/" => ("200 OK", "application/json", source.status_json()),
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", source.metrics_text()),
        "/trace" => ("200 OK", "application/json", source.trace_json()),
        _ => ("404 Not Found", "text/plain", format!("no route {path}\n")),
    };
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read up to the end of the request head and return the request path, or
/// `None` for anything that is not a well-formed `GET`.
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut first_line = head.lines().next().unwrap_or("").split_whitespace();
    match (first_line.next(), first_line.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

/// Minimal HTTP GET client for `swt dist-top`, tests and the CI smoke
/// (the container has no curl). Returns the response body of a 2xx reply.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    http_get_on(stream, addr, path)
}

fn http_get_on(mut stream: TcpStream, host: &str, path: &str) -> io::Result<String> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let req = format!("GET {path} HTTP/1.0\r\nHost: {host}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let text = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = match text.find("\r\n\r\n") {
        Some(split) => (&text[..split], &text[split + 4..]),
        None => return Err(io::Error::new(io::ErrorKind::InvalidData, "no HTTP header break")),
    };
    let status_ok = head.lines().next().is_some_and(|line| {
        line.split_whitespace().nth(1).is_some_and(|code| code.starts_with('2'))
    });
    if !status_ok {
        let line = head.lines().next().unwrap_or("").to_string();
        return Err(io::Error::other(format!("HTTP error: {line}")));
    }
    Ok(body.to_string())
}

/// Escape a Prometheus label value (`\`, `"` and newlines).
fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a report in the Prometheus text exposition format.
///
/// Dotted swt metric names travel as a `name` label on three stable metric
/// families (`swt_counter`, `swt_gauge`, `swt_span_seconds_total`), so the
/// scrape surface never churns as call sites come and go and the CI smoke
/// can diff label values directly against `report.json` keys.
pub fn prometheus_text(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# TYPE swt_counter counter\n");
    for c in &report.counters {
        let _ = writeln!(out, "swt_counter{{name=\"{}\"}} {}", prom_escape(&c.name), c.value);
    }
    out.push_str("# TYPE swt_gauge gauge\n");
    for g in &report.gauges {
        let _ = writeln!(out, "swt_gauge{{name=\"{}\"}} {}", prom_escape(&g.name), g.value);
        let _ = writeln!(out, "swt_gauge_max{{name=\"{}\"}} {}", prom_escape(&g.name), g.max);
    }
    out.push_str("# TYPE swt_span_seconds_total counter\n");
    for s in &report.spans {
        let worker = s.worker.map_or_else(|| "none".to_string(), |w| w.to_string());
        let _ = writeln!(
            out,
            "swt_span_seconds_total{{name=\"{}\",worker=\"{worker}\"}} {}",
            prom_escape(&s.path),
            s.total_secs
        );
    }
    out.push_str("# TYPE swt_histogram_sum counter\n");
    for h in &report.histograms {
        let _ = writeln!(out, "swt_histogram_sum{{name=\"{}\"}} {}", prom_escape(&h.name), h.sum);
        let _ =
            writeln!(out, "swt_histogram_count{{name=\"{}\"}} {}", prom_escape(&h.name), h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CounterRow, GaugeRow};

    struct StubSource;

    impl ServeSource for StubSource {
        fn status_json(&self) -> String {
            "{\"ok\":true}".to_string()
        }
        fn metrics_text(&self) -> String {
            "swt_counter{name=\"x\"} 1\n".to_string()
        }
        fn trace_json(&self) -> String {
            "{\"traceEvents\":[]}".to_string()
        }
    }

    fn must(cond: bool, what: &str) -> io::Result<()> {
        if cond {
            Ok(())
        } else {
            Err(io::Error::other(what.to_string()))
        }
    }

    #[test]
    fn serves_all_routes_and_404s_unknown_paths() -> io::Result<()> {
        let mut server = ObsServer::start("127.0.0.1:0", Arc::new(StubSource))?;
        let addr = server.addr().to_string();
        must(http_get(&addr, "/status")? == "{\"ok\":true}", "status body")?;
        must(http_get(&addr, "/")? == "{\"ok\":true}", "root aliases status")?;
        must(http_get(&addr, "/metrics")?.contains("swt_counter"), "metrics body")?;
        must(http_get(&addr, "/trace")?.contains("traceEvents"), "trace body")?;
        must(http_get(&addr, "/nope").is_err(), "unknown route must 404")?;
        server.stop();
        must(http_get(&addr, "/status").is_err(), "stopped server must refuse")
    }

    #[test]
    fn survives_garbage_requests() -> io::Result<()> {
        let server = ObsServer::start("127.0.0.1:0", Arc::new(StubSource))?;
        let addr = server.addr();
        // Not HTTP at all.
        {
            let mut s = TcpStream::connect(addr)?;
            s.write_all(b"\x00\x01\x02garbage\r\n\r\n")?;
        }
        // Oversized request head.
        {
            let mut s = TcpStream::connect(addr)?;
            let big = vec![b'A'; MAX_REQUEST_BYTES * 2];
            let _ = s.write_all(&big);
        }
        // The server must still answer a well-formed request afterwards.
        must(http_get(&addr.to_string(), "/status")? == "{\"ok\":true}", "alive after garbage")
    }

    #[test]
    fn prometheus_rendering_escapes_and_labels() -> io::Result<()> {
        let report = RunReport {
            counters: vec![CounterRow { name: "a\"b\\c".to_string(), value: 3 }],
            gauges: vec![GaugeRow { name: "q".to_string(), value: -2, max: 9 }],
            ..RunReport::default()
        };
        let text = prometheus_text(&report);
        must(text.contains("swt_counter{name=\"a\\\"b\\\\c\"} 3"), "escaped counter")?;
        must(text.contains("swt_gauge{name=\"q\"} -2"), "gauge value")?;
        must(text.contains("swt_gauge_max{name=\"q\"} 9"), "gauge max")
    }
}
