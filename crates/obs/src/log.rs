//! Leveled structured logging with an optional JSONL sink.
//!
//! Library crates log through [`crate::error!`] … [`crate::trace!`] instead
//! of raw `println!`/`eprintln!` (scripts/check.sh greps for regressions).
//! Messages at or below the active level go to stderr — stdout stays
//! reserved for figure/CSV output — and, when a sink is installed via
//! [`set_jsonl_path`], to a JSON-lines file for machine consumption.
//!
//! The level comes from `SWT_LOG` (`off|error|warn|info|debug|trace`,
//! default `info`) or [`set_max_level`]. The level check is one relaxed
//! atomic load and happens *before* message formatting.

use crate::json::escape;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a level name; `off` and unknown names mean "log nothing".
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Sentinel: level not yet initialised from the environment.
const LEVEL_UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn max_level() -> u8 {
    let l = MAX_LEVEL.load(Ordering::Relaxed);
    if l != LEVEL_UNSET {
        return l;
    }
    let from_env = std::env::var("SWT_LOG")
        .ok()
        .map(|v| Level::parse(&v).map_or(0, |l| l as u8))
        .unwrap_or(Level::Info as u8);
    MAX_LEVEL.store(from_env, Ordering::Relaxed);
    from_env
}

/// Override the active level (e.g. `set_max_level(Some(Level::Debug))`;
/// `None` silences logging entirely).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Whether a message at `level` would be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

static JSONL: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Send every emitted record to `path` as JSON lines (in addition to
/// stderr). Replaces any previous sink; the file is created or truncated.
pub fn set_jsonl_path(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    *JSONL.lock().unwrap_or_else(|e| e.into_inner()) = Some(BufWriter::new(file));
    Ok(())
}

/// Remove the JSONL sink, flushing it.
pub fn clear_jsonl_sink() {
    if let Some(mut w) = JSONL.lock().unwrap_or_else(|e| e.into_inner()).take() {
        let _ = w.flush();
    }
}

/// Emit one record. Callers go through the macros, which check
/// [`log_enabled`] first so disabled messages are never formatted.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let msg = args.to_string();
    eprintln!("[{:<5} {target}] {msg}", level.name());
    let mut sink = JSONL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = sink.as_mut() {
        let ts_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64);
        let line = format!(
            "{{\"ts_ms\":{ts_ms},\"level\":{},\"target\":{},\"msg\":{}}}",
            escape(level.name()),
            escape(target),
            escape(&msg)
        );
        // Flush per record so logs survive crashes and are tail-able.
        let ok = writeln!(w, "{line}").and_then(|_| w.flush());
        if ok.is_err() {
            *sink = None; // drop a broken sink instead of erroring forever
        }
    }
}

/// Log at [`Level::Error`]: `error!("target", "format {}", args)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => {
        if $crate::log::log_enabled($crate::log::Level::Trace) {
            $crate::log::log($crate::log::Level::Trace, $target, format_args!($($arg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _lock = crate::test_lock();
        let path = std::env::temp_dir().join(format!("swt_obs_log_{}.jsonl", std::process::id()));
        set_jsonl_path(&path).unwrap();
        set_max_level(Some(Level::Debug));
        crate::info!("obs::test", "hello {} with \"quotes\"", 42);
        crate::trace!("obs::test", "filtered out");
        clear_jsonl_sink();
        set_max_level(None);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "trace is above the debug level: {text}");
        let rec = Json::parse(lines[0]).unwrap();
        assert_eq!(rec.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(rec.get("target").unwrap().as_str(), Some("obs::test"));
        assert_eq!(rec.get("msg").unwrap().as_str(), Some("hello 42 with \"quotes\""));
        assert!(rec.get("ts_ms").unwrap().as_u64().is_some());
    }

    #[test]
    fn disabled_levels_short_circuit() {
        let _lock = crate::test_lock();
        set_max_level(Some(Level::Error));
        assert!(log_enabled(Level::Error));
        assert!(!log_enabled(Level::Warn));
        set_max_level(None);
        assert!(!log_enabled(Level::Error));
        set_max_level(Some(Level::Info));
    }
}
