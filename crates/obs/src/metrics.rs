//! Lock-free metric primitives: counters, fixed-bucket histograms, gauges.
//!
//! All mutators gate on [`crate::enabled`] (one relaxed atomic load) so the
//! disabled path costs a predictable branch, and record via relaxed atomics
//! so the enabled path never takes a lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of power-of-two latency buckets a [`Histogram`] keeps. Bucket `i`
/// counts observations in `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes
/// zero); the last bucket absorbs everything larger (~4.3 s and up).
pub const HIST_BUCKETS: usize = 32;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` events (no-op while instrumentation is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Shorthand for `add(1)`.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Fold another process's accumulated total into this counter.
    ///
    /// Unlike [`Counter::add`] this is **not** gated on [`crate::enabled`]:
    /// it is the cross-process merge path (a coordinator absorbing worker
    /// snapshots), not hot-path instrumentation, and dropping already-paid
    /// remote totals because the local switch happens to be off would break
    /// counter conservation in merged reports.
    #[inline]
    pub fn merge_add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket (power-of-two nanoseconds) latency/size histogram.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for an observation: `floor(log2(value))`, clamped.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    ((63 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (nanoseconds for latencies, bytes for sizes).
    #[inline]
    pub fn observe(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in seconds (stored as nanoseconds).
    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        self.observe((secs.max(0.0) * 1e9) as u64);
    }

    /// Fold another histogram's totals into this one, bucket by bucket.
    ///
    /// `buckets` carries `(inclusive upper bound, count)` pairs as produced
    /// by a report snapshot; each bound maps back onto the pow2 bucket that
    /// contains it ([`bucket_index`]), so merging is exact as long as both
    /// sides use the same bucket layout — which the protocol version pins.
    /// Like [`Counter::merge_add`], this is the cross-process merge path and
    /// is deliberately not gated on [`crate::enabled`].
    pub fn merge(&self, count: u64, sum: u64, buckets: &[(u64, u64)]) {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        for &(bound, c) in buckets {
            self.buckets[bucket_index(bound)].fetch_add(c, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of all bucket counts.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// An up/down gauge with a high-watermark (e.g. async checkpoint queue
/// depth).
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` (may be negative) and update the high-watermark.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        let now = self.current.fetch_add(delta, Ordering::Relaxed) + delta;
        self.raise_max(now);
    }

    /// Raise the high-watermark to `candidate` if it is higher, via an
    /// explicit CAS loop so a concurrent raise can never overwrite a
    /// larger peak with a smaller one.
    #[inline]
    fn raise_max(&self, candidate: i64) {
        let mut seen = self.max.load(Ordering::Relaxed);
        while candidate > seen {
            match self.max.compare_exchange_weak(
                seen,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => seen = actual,
            }
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the current value (still watermarked).
    pub fn set(&self, value: i64) {
        if !crate::enabled() {
            return;
        }
        self.current.store(value, Ordering::Relaxed);
        self.raise_max(value);
    }

    pub fn get(&self) -> i64 {
        self.current.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1 << 31), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(1), 3);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_paths_ignore_the_enabled_switch() {
        let _lock = crate::test_lock();
        crate::disable();
        let c = Counter::new();
        c.merge_add(7);
        assert_eq!(c.get(), 7, "merge_add is the ungated cross-process path");

        let h = Histogram::new();
        h.merge(3, 1029, &[(1, 1), (1023, 1), (u64::MAX, 1)]);
        assert_eq!((h.count(), h.sum()), (3, 1029));
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1, "bound 1 lands in bucket 0");
        assert_eq!(buckets[9], 1, "bound 1023 lands in bucket 9");
        assert_eq!(buckets[HIST_BUCKETS - 1], 1, "the overflow bound folds into the last bucket");
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _lock = crate::test_lock();
        crate::disable();
        let c = Counter::new();
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.observe(100);
        assert_eq!(h.count(), 0);
        let g = Gauge::new();
        g.inc();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_high_watermark_survives_concurrent_adds() {
        let _lock = crate::test_lock();
        crate::enable();
        // Monotone adds from many threads: the peak is, by construction,
        // the final value — any missed intermediate max manifests as
        // max < current at the end. Mixed up/down traffic then checks the
        // watermark never exceeds what was simultaneously outstanding.
        let g = std::sync::Arc::new(Gauge::new());
        const THREADS: usize = 8;
        const ADDS: i64 = 2_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = std::sync::Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..ADDS {
                        g.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let total = THREADS as i64 * ADDS;
        assert_eq!(g.get(), total);
        assert_eq!(g.max(), total, "CAS watermark must capture the true peak");

        let g = std::sync::Arc::new(Gauge::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = std::sync::Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..ADDS {
                        g.inc();
                        g.dec();
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        assert_eq!(g.get(), 0);
        assert!(g.max() >= 1, "at least one increment was observed");
        assert!(g.max() <= THREADS as i64, "peak bounded by concurrent holders");
        crate::disable();
    }

    #[test]
    fn enabled_metrics_accumulate() {
        let _lock = crate::test_lock();
        crate::enable();
        let c = Counter::new();
        c.add(2);
        c.inc();
        assert_eq!(c.get(), 3);

        let h = Histogram::new();
        h.observe(0);
        h.observe(5);
        h.observe(1 << 20);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5 + (1 << 20));
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[2], 1);
        assert_eq!(buckets[20], 1);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        assert_eq!(g.max(), 2);
        g.set(10);
        assert_eq!(g.max(), 10);

        c.reset();
        h.reset();
        g.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!((g.get(), g.max()), (0, 0));
        crate::disable();
    }
}
