//! Hierarchical RAII span timers with per-worker attribution.
//!
//! Each thread keeps a stack of active span names; a guard entered while
//! others are active records under the dotted join of the whole stack
//! (`"nas.eval"` then `"train"` → `"nas.eval.train"`). Path→stat handles
//! are cached thread-locally so the registry mutex is touched only the
//! first time a thread sees a path.

use crate::registry::{self, SpanStat};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Joined-path → stat handle cache (valid across [`crate::reset`]).
    static CACHE: RefCell<HashMap<String, Arc<SpanStat>>> = RefCell::new(HashMap::new());
    /// Worker id this thread's spans are attributed to.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Attribute all subsequent spans on this thread to evaluator `worker`.
pub fn set_worker(worker: usize) {
    WORKER.with(|w| w.set(Some(worker)));
}

/// Stop attributing this thread's spans to a worker.
pub fn clear_worker() {
    WORKER.with(|w| w.set(None));
}

/// The worker id currently attributed to this thread, if any.
pub fn current_worker() -> Option<usize> {
    WORKER.with(|w| w.get())
}

/// RAII guard created by [`crate::span!`]: records the elapsed wall time of
/// its scope when dropped. A no-op (no allocation, no lock) while
/// instrumentation is disabled.
#[must_use = "a span guard records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    inner: Option<Active>,
}

struct Active {
    stat: Arc<SpanStat>,
    start: Instant,
    /// Stack depth before this span was pushed; drop truncates back to it
    /// so an out-of-order drop cannot corrupt sibling paths.
    depth: usize,
}

impl SpanGuard {
    /// Open a span named `name` under the current thread's span path.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard { inner: Some(Self::enter_slow(name)) }
    }

    fn enter_slow(name: &'static str) -> Active {
        let (path, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            stack.push(name);
            (stack.join("."), depth)
        });
        let stat = CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            match cache.get(&path) {
                Some(stat) => Arc::clone(stat),
                None => {
                    let stat = registry::global().span(&path);
                    cache.insert(path, Arc::clone(&stat));
                    stat
                }
            }
        });
        Active { stat, start: Instant::now(), depth }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let elapsed = active.start.elapsed().as_nanos() as u64;
            active.stat.record(current_worker(), elapsed);
            STACK.with(|stack| stack.borrow_mut().truncate(active.depth));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{SpanStat, UNATTRIBUTED_SLOT};

    fn total(path: &str, slot: usize) -> (u64, u64) {
        let stat = registry::global().span(path);
        let (count, total_ns, ..) = stat.snapshot(slot);
        (count, total_ns)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = crate::test_lock();
        crate::disable();
        crate::reset();
        {
            let _g = crate::span!("obs_test.disabled");
        }
        assert_eq!(total("obs_test.disabled", UNATTRIBUTED_SLOT).0, 0);
    }

    #[test]
    fn nested_spans_build_dotted_paths() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        {
            let _outer = crate::span!("obs_test.outer");
            {
                let _inner = crate::span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        {
            let _sibling = crate::span!("obs_test.sibling");
        }
        crate::disable();
        let (count, ns) = total("obs_test.outer.inner", UNATTRIBUTED_SLOT);
        assert_eq!(count, 1);
        assert!(ns >= 1_000_000, "inner span ≥ 1ms, got {ns}");
        let (outer_count, outer_ns) = total("obs_test.outer", UNATTRIBUTED_SLOT);
        assert_eq!(outer_count, 1);
        assert!(outer_ns >= ns, "outer encloses inner");
        // The sibling opened after `outer` closed must not nest under it.
        assert_eq!(total("obs_test.sibling", UNATTRIBUTED_SLOT).0, 1);
        assert_eq!(total("obs_test.outer.obs_test.sibling", UNATTRIBUTED_SLOT).0, 0);
    }

    #[test]
    fn worker_attribution_is_per_thread() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        let handles: Vec<_> = (0..3)
            .map(|w| {
                std::thread::spawn(move || {
                    set_worker(w);
                    let _g = crate::span!("obs_test.worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::disable();
        let stat = registry::global().span("obs_test.worker");
        for w in 0..3 {
            assert_eq!(stat.snapshot(SpanStat::slot_for(Some(w))).0, 1, "worker {w}");
        }
        assert_eq!(stat.snapshot(UNATTRIBUTED_SLOT).0, 0);
    }
}
