//! Hierarchical RAII span timers with per-worker attribution.
//!
//! Each thread keeps a cached *span tree*: one node per distinct dotted
//! path it has ever entered (`"nas.eval"` then `"train"` →
//! `"nas.eval.train"`). Entering a span is a linear scan of the current
//! node's children — no allocation, no hashing, no registry lock once a
//! path has been seen — and the registry mutex is touched only the first
//! time a thread sees a path.
//!
//! Closed spans are not applied to the registry immediately: they are
//! buffered thread-locally and flushed when the outermost span of the tree
//! closes (or when the buffer reaches a fixed cap, whichever comes
//! first). Buffered records are *completed* spans, so deferring them is
//! observably identical for report totals while keeping the per-span cost
//! to a couple of thread-local pushes. The flush also feeds the event
//! timeline ([`crate::timeline`]) when it is enabled.

use crate::registry::{self, SpanStat};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

/// Buffered span records are flushed to the registry at the latest when
/// this many accumulate, bounding the buffer even for pathological span
/// trees that never return to depth 0.
const FLUSH_AT: usize = 128;

thread_local! {
    static TREE: RefCell<SpanTree> = RefCell::new(SpanTree::new());
    /// Worker id this thread's spans are attributed to.
    static WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Attribute all subsequent spans on this thread to evaluator `worker`.
pub fn set_worker(worker: usize) {
    WORKER.with(|w| w.set(Some(worker)));
}

/// Stop attributing this thread's spans to a worker.
pub fn clear_worker() {
    WORKER.with(|w| w.set(None));
}

/// The worker id currently attributed to this thread, if any.
pub fn current_worker() -> Option<usize> {
    WORKER.with(|w| w.get())
}

/// Flush this thread's buffered span records to the registry now.
///
/// Normally unnecessary — records flush when the span tree returns to its
/// root — but long-lived threads that read the registry mid-tree (tests,
/// snapshot exporters) can force the buffer out.
pub fn flush_thread() {
    TREE.with(|t| t.borrow_mut().flush());
}

/// One cached node of the thread's span tree.
struct Node {
    name: &'static str,
    /// Full dotted path (kept for the timeline's event names).
    path: Arc<str>,
    /// Registry handle; `None` only for the sentinel root.
    stat: Option<Arc<SpanStat>>,
    children: Vec<usize>,
}

/// A closed span waiting to be applied to the registry.
struct Pending {
    node: usize,
    worker: Option<usize>,
    start: Instant,
    dur_ns: u64,
}

struct SpanTree {
    nodes: Vec<Node>,
    /// Node the next entered span nests under (0 = root).
    current: usize,
    /// Number of currently open spans on this thread.
    depth: usize,
    buf: Vec<Pending>,
}

impl SpanTree {
    fn new() -> SpanTree {
        SpanTree {
            nodes: vec![Node { name: "", path: Arc::from(""), stat: None, children: Vec::new() }],
            current: 0,
            depth: 0,
            buf: Vec::new(),
        }
    }

    /// Enter `name` under the current node; returns `(node, prev_current,
    /// prev_depth)` for the guard to restore on drop.
    fn enter(&mut self, name: &'static str) -> (usize, usize, usize) {
        let cur = self.current;
        let node = match self.nodes[cur].children.iter().copied().find(|&c| {
            let n = self.nodes[c].name;
            // Pointer equality catches the common literal-reuse case
            // before falling back to a content compare.
            std::ptr::eq(n.as_ptr(), name.as_ptr()) && n.len() == name.len() || n == name
        }) {
            Some(node) => node,
            None => self.intern_child(cur, name),
        };
        let prev_depth = self.depth;
        self.current = node;
        self.depth += 1;
        (node, cur, prev_depth)
    }

    /// Build (and intern in the registry) the child `name` of `parent`.
    fn intern_child(&mut self, parent: usize, name: &'static str) -> usize {
        let path = if self.nodes[parent].path.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.nodes[parent].path, name)
        };
        let stat = registry::global().span(&path);
        let node = self.nodes.len();
        self.nodes.push(Node {
            name,
            path: Arc::from(path),
            stat: Some(stat),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(node);
        node
    }

    /// Close a span: buffer its record and restore the tree position.
    fn exit(&mut self, active: Active, dur_ns: u64, worker: Option<usize>) {
        self.buf.push(Pending { node: active.node, worker, start: active.start, dur_ns });
        // Restoring the saved position (rather than popping) means an
        // out-of-order drop cannot corrupt sibling paths.
        self.current = active.prev_current;
        self.depth = active.prev_depth;
        if self.depth == 0 || self.buf.len() >= FLUSH_AT {
            self.flush();
        }
    }

    fn flush(&mut self) {
        let timeline_on = crate::timeline::enabled();
        for p in self.buf.drain(..) {
            let node = &self.nodes[p.node];
            if let Some(stat) = &node.stat {
                stat.record(p.worker, p.dur_ns);
            }
            if timeline_on {
                crate::timeline::record_span(
                    p.worker,
                    &node.path,
                    crate::timeline::instant_ns(p.start),
                    p.dur_ns,
                );
            }
        }
    }
}

/// RAII guard created by [`crate::span!`]: records the elapsed wall time of
/// its scope when dropped. A no-op (no allocation, no lock) while
/// instrumentation is disabled.
#[must_use = "a span guard records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    inner: Option<Active>,
}

struct Active {
    node: usize,
    /// Tree position before this span opened; drop restores it so an
    /// out-of-order drop cannot corrupt sibling paths.
    prev_current: usize,
    prev_depth: usize,
    start: Instant,
}

impl SpanGuard {
    /// Open a span named `name` under the current thread's span path.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        SpanGuard { inner: Some(Self::enter_slow(name)) }
    }

    fn enter_slow(name: &'static str) -> Active {
        let (node, prev_current, prev_depth) = TREE.with(|t| t.borrow_mut().enter(name));
        Active { node, prev_current, prev_depth, start: Instant::now() }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let dur_ns = active.start.elapsed().as_nanos() as u64;
            let worker = current_worker();
            TREE.with(|t| t.borrow_mut().exit(active, dur_ns, worker));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{SpanStat, UNATTRIBUTED_SLOT};

    fn total(path: &str, slot: usize) -> (u64, u64) {
        let stat = registry::global().span(path);
        let (count, total_ns, ..) = stat.snapshot(slot);
        (count, total_ns)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = crate::test_lock();
        crate::disable();
        crate::reset();
        {
            let _g = crate::span!("obs_test.disabled");
        }
        flush_thread();
        assert_eq!(total("obs_test.disabled", UNATTRIBUTED_SLOT).0, 0);
    }

    #[test]
    fn nested_spans_build_dotted_paths() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        {
            let _outer = crate::span!("obs_test.outer");
            {
                let _inner = crate::span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        {
            let _sibling = crate::span!("obs_test.sibling");
        }
        crate::disable();
        let (count, ns) = total("obs_test.outer.inner", UNATTRIBUTED_SLOT);
        assert_eq!(count, 1);
        assert!(ns >= 1_000_000, "inner span ≥ 1ms, got {ns}");
        let (outer_count, outer_ns) = total("obs_test.outer", UNATTRIBUTED_SLOT);
        assert_eq!(outer_count, 1);
        assert!(outer_ns >= ns, "outer encloses inner");
        // The sibling opened after `outer` closed must not nest under it.
        assert_eq!(total("obs_test.sibling", UNATTRIBUTED_SLOT).0, 1);
        assert_eq!(total("obs_test.outer.obs_test.sibling", UNATTRIBUTED_SLOT).0, 0);
    }

    #[test]
    fn records_buffer_until_the_root_closes() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        {
            let _outer = crate::span!("obs_test.buffered");
            {
                let _inner = crate::span!("leaf");
            }
            // The inner span is closed but still buffered: the registry
            // must not see it until the tree returns to depth 0.
            assert_eq!(total("obs_test.buffered.leaf", UNATTRIBUTED_SLOT).0, 0);
        }
        assert_eq!(total("obs_test.buffered.leaf", UNATTRIBUTED_SLOT).0, 1);
        assert_eq!(total("obs_test.buffered", UNATTRIBUTED_SLOT).0, 1);
        crate::disable();
    }

    #[test]
    fn deep_buffers_flush_at_the_cap() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        {
            let _root = crate::span!("obs_test.cap");
            for _ in 0..(super::FLUSH_AT + 5) {
                let _leaf = crate::span!("leaf");
            }
            // Still inside the root, yet ≥ FLUSH_AT records must have been
            // applied by the bounded-buffer flush.
            let (count, _) = total("obs_test.cap.leaf", UNATTRIBUTED_SLOT);
            assert!(count >= super::FLUSH_AT as u64, "flushed at the cap, saw {count}");
        }
        let (count, _) = total("obs_test.cap.leaf", UNATTRIBUTED_SLOT);
        assert_eq!(count, (super::FLUSH_AT + 5) as u64);
        crate::disable();
    }

    #[test]
    fn flush_feeds_the_timeline_when_enabled() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        crate::timeline::reset();
        crate::timeline::enable();
        {
            let _g = crate::span!("obs_test.timelined");
        }
        crate::timeline::disable();
        crate::disable();
        let d = crate::timeline::drain_since(UNATTRIBUTED_SLOT, 0);
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].name, "obs_test.timelined");
        assert_eq!(d.events[0].kind, crate::timeline::EventKind::Span);
        crate::timeline::reset();
    }

    #[test]
    fn worker_attribution_is_per_thread() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        let handles: Vec<_> = (0..3)
            .map(|w| {
                std::thread::spawn(move || {
                    set_worker(w);
                    let _g = crate::span!("obs_test.worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::disable();
        let stat = registry::global().span("obs_test.worker");
        for w in 0..3 {
            assert_eq!(stat.snapshot(SpanStat::slot_for(Some(w))).0, 1, "worker {w}");
        }
        assert_eq!(stat.snapshot(UNATTRIBUTED_SLOT).0, 0);
    }
}
