//! End-of-run reports: a serializable snapshot of the registry.
//!
//! [`RunReport::capture`] turns the live atomics into plain rows — spans
//! split per evaluator worker, counters, gauges and histograms — and
//! [`RunReport::to_json`] / [`RunReport::from_json`] round-trip the result
//! through `report.json`, the file the experiment harness writes next to
//! each NAS trace CSV. The schema is documented in DESIGN.md §8.

use crate::json::Json;
use crate::metrics::bucket_bound;
use crate::registry::{self, Registry, UNATTRIBUTED_SLOT, WORKER_SLOTS};
use std::io;
use std::path::Path;

/// Accumulated wall time of one span path on one worker (`worker: None` is
/// the unattributed slot — scheduler/main-thread time).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    pub path: String,
    pub worker: Option<usize>,
    pub count: u64,
    pub total_secs: f64,
    pub min_secs: f64,
    pub max_secs: f64,
}

/// One counter's total.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRow {
    pub name: String,
    pub value: u64,
}

/// One gauge's final value and high-watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRow {
    pub name: String,
    pub value: i64,
    pub max: i64,
}

/// One histogram: only non-empty buckets are kept, as `(inclusive upper
/// bound, count)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRow {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

/// A complete observability snapshot plus free-form metadata (app, scheme,
/// seed, wall_secs, …).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    pub meta: Vec<(String, String)>,
    pub spans: Vec<SpanRow>,
    pub counters: Vec<CounterRow>,
    pub gauges: Vec<GaugeRow>,
    pub histograms: Vec<HistogramRow>,
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

impl RunReport {
    /// Snapshot the process-global registry.
    pub fn capture() -> RunReport {
        Self::capture_from(registry::global())
    }

    /// Snapshot an explicit registry (tests).
    pub fn capture_from(reg: &Registry) -> RunReport {
        let mut report = RunReport::default();
        reg.for_each_span(|path, stat| {
            for slot in 0..=WORKER_SLOTS {
                let (count, total_ns, min_ns, max_ns) = stat.snapshot(slot);
                if count == 0 {
                    continue;
                }
                report.spans.push(SpanRow {
                    path: path.to_string(),
                    worker: (slot != UNATTRIBUTED_SLOT).then_some(slot),
                    count,
                    total_secs: secs(total_ns),
                    min_secs: secs(min_ns),
                    max_secs: secs(max_ns),
                });
            }
        });
        reg.for_each_counter(|name, c| {
            let value = c.get();
            if value > 0 {
                report.counters.push(CounterRow { name: name.to_string(), value });
            }
        });
        reg.for_each_gauge(|name, g| {
            let (value, max) = (g.get(), g.max());
            if value != 0 || max != 0 {
                report.gauges.push(GaugeRow { name: name.to_string(), value, max });
            }
        });
        reg.for_each_histogram(|name, h| {
            let count = h.count();
            if count == 0 {
                return;
            }
            let buckets = h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_bound(i), c))
                .collect();
            report.histograms.push(HistogramRow {
                name: name.to_string(),
                count,
                sum: h.sum(),
                buckets,
            });
        });
        report
    }

    /// Attach a metadata key/value (builder style).
    pub fn with_meta(mut self, key: &str, value: impl ToString) -> Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Worker ids that recorded at least one span, ascending.
    pub fn workers(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.spans.iter().filter_map(|s| s.worker).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total seconds under `path` for one worker (0 when absent).
    pub fn worker_span_secs(&self, worker: Option<usize>, path: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.worker == worker && s.path == path)
            .map(|s| s.total_secs)
            .sum()
    }

    /// Total seconds under `path` across all workers.
    pub fn span_total_secs(&self, path: &str) -> f64 {
        self.spans.iter().filter(|s| s.path == path).map(|s| s.total_secs).sum()
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|c| c.name.starts_with(prefix)).map(|c| c.value).sum()
    }

    /// Fold `other` into `self` — the cross-process aggregation primitive.
    ///
    /// Counters sum by name; histograms sum counts/sums and merge buckets by
    /// bound; spans sum counts/totals and combine min/max per `(path,
    /// worker)`; gauges sum both value and high-watermark (the summed
    /// watermark is an upper bound on the true cluster-wide peak, since
    /// per-process peaks need not coincide). Metadata keeps the first
    /// occurrence of each key. Rows are re-sorted afterwards, so for
    /// integer-valued sections (counters, histograms) the merge is
    /// associative and commutative — the property that makes "merge worker
    /// snapshots in arrival order" well-defined.
    pub fn merge(&mut self, other: &RunReport) {
        for (k, v) in &other.meta {
            if !self.meta.iter().any(|(mine, _)| mine == k) {
                self.meta.push((k.clone(), v.clone()));
            }
        }
        for s in &other.spans {
            match self.spans.iter_mut().find(|m| m.path == s.path && m.worker == s.worker) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.total_secs += s.total_secs;
                    mine.min_secs = mine.min_secs.min(s.min_secs);
                    mine.max_secs = mine.max_secs.max(s.max_secs);
                }
                None => self.spans.push(s.clone()),
            }
        }
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(mine) => {
                    mine.value += g.value;
                    mine.max += g.max;
                }
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(mine) => {
                    mine.count += h.count;
                    mine.sum += h.sum;
                    for &(le, c) in &h.buckets {
                        match mine.buckets.iter_mut().find(|(b, _)| *b == le) {
                            Some((_, mc)) => *mc += c,
                            None => mine.buckets.push((le, c)),
                        }
                    }
                    mine.buckets.sort_unstable_by_key(|&(le, _)| le);
                }
                None => self.histograms.push(h.clone()),
            }
        }
        // Canonical ordering: capture produces name-sorted sections, and a
        // merged report must look the same regardless of merge order.
        self.spans.sort_by(|a, b| {
            (a.path.as_str(), a.worker.map_or(0, |w| w + 1))
                .cmp(&(b.path.as_str(), b.worker.map_or(0, |w| w + 1)))
        });
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Fold this report's counters and histograms into `reg` (interning
    /// names as needed) — how a coordinator makes worker-side totals visible
    /// to its own later [`RunReport::capture`]. Spans and gauges are *not*
    /// absorbed: span worker-slot attribution and gauge current-values are
    /// process-local notions that would mislead when summed into a live
    /// registry; they stay in the per-process reports.
    pub fn absorb_into(&self, reg: &Registry) {
        for c in &self.counters {
            reg.merge_counter(&c.name, c.value);
        }
        for h in &self.histograms {
            reg.merge_histogram(&h.name, h.count, h.sum, &h.buckets);
        }
    }

    /// Render the report as a JSON document.
    pub fn to_json(&self) -> String {
        let meta =
            Json::Obj(self.meta.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect());
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("path".into(), Json::Str(s.path.clone())),
                        ("worker".into(), s.worker.map_or(Json::Null, |w| Json::Num(w as f64))),
                        ("count".into(), Json::Num(s.count as f64)),
                        ("total_secs".into(), Json::Num(s.total_secs)),
                        ("min_secs".into(), Json::Num(s.min_secs)),
                        ("max_secs".into(), Json::Num(s.max_secs)),
                    ])
                })
                .collect(),
        );
        let counters = Json::Arr(
            self.counters
                .iter()
                .map(|c| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(c.name.clone())),
                        ("value".into(), Json::Num(c.value as f64)),
                    ])
                })
                .collect(),
        );
        let gauges = Json::Arr(
            self.gauges
                .iter()
                .map(|g| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(g.name.clone())),
                        ("value".into(), Json::Num(g.value as f64)),
                        ("max".into(), Json::Num(g.max as f64)),
                    ])
                })
                .collect(),
        );
        let histograms = Json::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(h.name.clone())),
                        ("count".into(), Json::Num(h.count as f64)),
                        ("sum".into(), Json::Num(h.sum as f64)),
                        (
                            "buckets".into(),
                            Json::Arr(
                                h.buckets
                                    .iter()
                                    .map(|&(le, c)| {
                                        Json::Arr(vec![
                                            // The overflow bound u64::MAX is
                                            // not exactly representable in
                                            // f64; serialize it as -1.
                                            if le == u64::MAX {
                                                Json::Num(-1.0)
                                            } else {
                                                Json::Num(le as f64)
                                            },
                                            Json::Num(c as f64),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("meta".into(), meta),
            ("spans".into(), spans),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
        .render()
    }

    /// Parse a report previously produced by [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text)?;
        let mut report = RunReport::default();
        if let Some(Json::Obj(members)) = doc.get("meta") {
            for (k, v) in members {
                let v = v.as_str().ok_or("meta values must be strings")?;
                report.meta.push((k.clone(), v.to_string()));
            }
        }
        let field = |row: &Json, key: &str| -> Result<f64, String> {
            row.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing field '{key}'"))
        };
        for row in doc.get("spans").and_then(Json::as_array).unwrap_or(&[]) {
            report.spans.push(SpanRow {
                path: row
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or("span row missing 'path'")?
                    .to_string(),
                worker: match row.get("worker") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(v.as_u64().ok_or("bad span worker")? as usize),
                },
                count: field(row, "count")? as u64,
                total_secs: field(row, "total_secs")?,
                min_secs: field(row, "min_secs")?,
                max_secs: field(row, "max_secs")?,
            });
        }
        for row in doc.get("counters").and_then(Json::as_array).unwrap_or(&[]) {
            report.counters.push(CounterRow {
                name: row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("counter row missing 'name'")?
                    .to_string(),
                value: field(row, "value")? as u64,
            });
        }
        for row in doc.get("gauges").and_then(Json::as_array).unwrap_or(&[]) {
            report.gauges.push(GaugeRow {
                name: row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("gauge row missing 'name'")?
                    .to_string(),
                value: field(row, "value")? as i64,
                max: field(row, "max")? as i64,
            });
        }
        for row in doc.get("histograms").and_then(Json::as_array).unwrap_or(&[]) {
            let mut buckets = Vec::new();
            for pair in row.get("buckets").and_then(Json::as_array).unwrap_or(&[]) {
                let pair = pair.as_array().ok_or("histogram bucket must be a pair")?;
                if pair.len() != 2 {
                    return Err("histogram bucket must be a pair".into());
                }
                let le = match pair[0].as_f64() {
                    Some(x) if x < 0.0 => u64::MAX,
                    Some(x) => x as u64,
                    None => return Err("bad bucket bound".into()),
                };
                buckets.push((le, pair[1].as_u64().ok_or("bad bucket count")?));
            }
            report.histograms.push(HistogramRow {
                name: row
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("histogram row missing 'name'")?
                    .to_string(),
                count: field(row, "count")? as u64,
                sum: field(row, "sum")? as u64,
                buckets,
            });
        }
        Ok(report)
    }

    /// Write the JSON rendering to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Read a report back from `path`.
    pub fn read_json(path: &Path) -> io::Result<RunReport> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            meta: vec![("app".into(), "Uno".into()), ("seed".into(), "3".into())],
            spans: vec![
                SpanRow {
                    path: "nas.eval".into(),
                    worker: Some(0),
                    count: 4,
                    total_secs: 1.25,
                    min_secs: 0.2,
                    max_secs: 0.4,
                },
                SpanRow {
                    path: "nas.eval".into(),
                    worker: None,
                    count: 1,
                    total_secs: 0.1,
                    min_secs: 0.1,
                    max_secs: 0.1,
                },
            ],
            counters: vec![CounterRow { name: "nn.batches".into(), value: 128 }],
            gauges: vec![GaugeRow { name: "ckpt.queue".into(), value: 0, max: 7 }],
            histograms: vec![HistogramRow {
                name: "ckpt.save_ns".into(),
                count: 3,
                sum: 3000,
                buckets: vec![(1023, 2), (u64::MAX, 1)],
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let report = sample();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn file_round_trip() {
        let report = sample();
        let path = std::env::temp_dir().join(format!("swt_report_{}.json", std::process::id()));
        report.write_json(&path).unwrap();
        let back = RunReport::read_json(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn accessors_aggregate_rows() {
        let report = sample();
        assert_eq!(report.workers(), vec![0]);
        assert_eq!(report.worker_span_secs(Some(0), "nas.eval"), 1.25);
        assert_eq!(report.worker_span_secs(None, "nas.eval"), 0.1);
        assert_eq!(report.span_total_secs("nas.eval"), 1.35);
        assert_eq!(report.counter("nn.batches"), 128);
        assert_eq!(report.counter("missing"), 0);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(RunReport::from_json("not json").is_err());
        assert!(RunReport::from_json(r#"{"spans":[{"worker":0}]}"#).is_err());
        assert!(RunReport::from_json(r#"{"counters":[{"name":"x"}]}"#).is_err());
    }

    #[test]
    fn capture_collects_live_metrics() {
        let _lock = crate::test_lock();
        crate::enable();
        crate::reset();
        crate::counter!("obs_test.report.counter").add(3);
        crate::gauge!("obs_test.report.gauge").add(2);
        crate::histogram!("obs_test.report.hist").observe(100);
        {
            crate::span::set_worker(1);
            let _g = crate::span!("obs_test.report.span");
        }
        crate::span::clear_worker();
        crate::disable();
        let report = RunReport::capture().with_meta("k", "v");
        assert_eq!(report.counter("obs_test.report.counter"), 3);
        assert!(report.workers().contains(&1));
        assert!(report.worker_span_secs(Some(1), "obs_test.report.span") >= 0.0);
        let hist = report.histograms.iter().find(|h| h.name == "obs_test.report.hist").unwrap();
        assert_eq!((hist.count, hist.sum), (1, 100));
        assert_eq!(report.meta.last().unwrap(), &("k".to_string(), "v".to_string()));
        // Round-trip the captured report too.
        assert_eq!(RunReport::from_json(&report.to_json()).unwrap(), report);
    }
}
