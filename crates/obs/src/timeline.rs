//! Bounded per-worker-slot event timeline.
//!
//! While the registry keeps *aggregates* (span totals, counter sums), the
//! timeline keeps *events*: individual span completions and counter-delta
//! marks, each stamped with a per-slot monotone sequence number and a
//! nanosecond offset from the timeline epoch. Events land in a
//! fixed-capacity ring per worker slot, so the memory bound is a hard
//! constant and a slow consumer loses the oldest events — readers observe
//! the loss as a `dropped` count ([`drain_since`]), never as corruption.
//!
//! The timeline has its own switch on top of [`crate::enabled`]: span
//! recording pays nothing for it unless both are on. Consumers poll with a
//! cursor (`drain_since(slot, seq)` returns everything at or after `seq`
//! that is still buffered); the wire layer ships those batches to the
//! coordinator, and [`chrome_trace_json`] renders any event collection as
//! Chrome `trace_event` JSON loadable in `chrome://tracing` / Perfetto.

use crate::json::Json;
use crate::registry::{SpanStat, WORKER_SLOTS};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Events each worker-slot ring retains before overwriting the oldest.
pub const RING_CAPACITY: usize = 4096;

/// What a [`TimelineEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span occurrence (`t_ns` = start, `dur_ns` = duration).
    Span,
    /// A counter-delta mark (`t_ns` = occurrence, `delta` = amount).
    Counter,
}

/// One recorded event, stamped with its slot-local sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Slot-local monotone sequence number, starting at 0.
    pub seq: u64,
    pub kind: EventKind,
    /// Span path or counter name.
    pub name: String,
    /// Nanoseconds since the timeline epoch (first enable of this process).
    pub t_ns: u64,
    /// Span duration in nanoseconds (0 for counter marks).
    pub dur_ns: u64,
    /// Counter delta (0 for spans).
    pub delta: i64,
}

/// Result of [`drain_since`]: the still-buffered events at or after the
/// requested cursor, the cursor to pass next time, and how many requested
/// events were already overwritten.
#[derive(Debug, Clone, Default)]
pub struct Drain {
    pub events: Vec<TimelineEvent>,
    /// Pass this as `since_seq` on the next call.
    pub next_seq: u64,
    /// Events in `[since_seq, next_seq)` that were overwritten before this
    /// read — the staleness signal for slow consumers.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct Ring {
    /// Sequence number the next pushed event will get.
    next_seq: u64,
    /// Up to [`RING_CAPACITY`] most recent events, oldest first.
    buf: std::collections::VecDeque<TimelineEvent>,
}

impl Ring {
    fn push(&mut self, kind: EventKind, name: &str, t_ns: u64, dur_ns: u64, delta: i64) {
        if self.buf.len() >= RING_CAPACITY {
            self.buf.pop_front();
        }
        self.buf.push_back(TimelineEvent {
            seq: self.next_seq,
            kind,
            name: name.to_string(),
            t_ns,
            dur_ns,
            delta,
        });
        self.next_seq += 1;
    }
}

static TIMELINE_ENABLED: AtomicBool = AtomicBool::new(false);

struct Timeline {
    /// One ring per worker slot plus the unattributed slot.
    slots: Vec<Mutex<Ring>>,
    epoch: Instant,
}

fn timeline() -> &'static Timeline {
    static GLOBAL: OnceLock<Timeline> = OnceLock::new();
    GLOBAL.get_or_init(|| Timeline {
        slots: (0..=WORKER_SLOTS).map(|_| Mutex::new(Ring::default())).collect(),
        epoch: Instant::now(),
    })
}

fn lock(slot: usize) -> MutexGuard<'static, Ring> {
    let tl = timeline();
    let m = &tl.slots[slot.min(WORKER_SLOTS)];
    // A ring holds no invariants across panics; recover the guard.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Start recording timeline events (also pins the epoch on first call).
/// Spans still require [`crate::enable`] — the timeline is a second gate,
/// not a replacement.
pub fn enable() {
    let _ = timeline(); // pin the epoch before any event can be recorded
    TIMELINE_ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording timeline events; buffered events are kept.
pub fn disable() {
    TIMELINE_ENABLED.store(false, Ordering::Relaxed);
}

/// Whether timeline recording is on. One relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    TIMELINE_ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds between the timeline epoch and `t` (0 if `t` predates it).
pub fn instant_ns(t: Instant) -> u64 {
    t.checked_duration_since(timeline().epoch).map_or(0, |d| d.as_nanos() as u64)
}

/// Nanoseconds since the timeline epoch.
pub fn now_ns() -> u64 {
    timeline().epoch.elapsed().as_nanos() as u64
}

/// Record a completed span occurrence into the ring of `worker`'s slot.
/// Called by the span layer at flush; callers must have checked
/// [`enabled`].
pub fn record_span(worker: Option<usize>, path: &str, t_ns: u64, dur_ns: u64) {
    lock(SpanStat::slot_for(worker)).push(EventKind::Span, path, t_ns, dur_ns, 0);
}

/// Record a counter-delta mark attributed to the current thread's worker.
/// This is the body of [`crate::event!`]; it gates on both switches so call
/// sites stay two relaxed loads when idle.
#[inline]
pub fn mark(name: &'static str, delta: i64) {
    if !crate::enabled() || !enabled() {
        return;
    }
    let t_ns = now_ns();
    lock(SpanStat::slot_for(crate::span::current_worker())).push(
        EventKind::Counter,
        name,
        t_ns,
        0,
        delta,
    );
}

/// Non-destructive read of slot `slot`'s events at or after `since_seq`.
///
/// The ring is bounded, so events older than `next_seq - RING_CAPACITY`
/// are gone; the gap between `since_seq` and the oldest survivor is
/// reported as `dropped`. Reading does not consume — the cursor lives with
/// the caller, which is what makes the stream safe to fan out.
pub fn drain_since(slot: usize, since_seq: u64) -> Drain {
    let ring = lock(slot);
    let oldest = ring.next_seq - ring.buf.len() as u64;
    let from = since_seq.max(oldest);
    let dropped = from - since_seq.min(from);
    let skip = (from - oldest) as usize;
    Drain {
        events: ring.buf.iter().skip(skip).cloned().collect(),
        next_seq: ring.next_seq,
        dropped,
    }
}

/// Clear every ring and reset all sequence numbers (test hygiene; the wire
/// stream assumes per-process seqs only ever grow while a run is live).
pub fn reset() {
    for slot in 0..=WORKER_SLOTS {
        let mut ring = lock(slot);
        ring.buf.clear();
        ring.next_seq = 0;
    }
}

/// Render `(pid, event)` pairs as a Chrome `trace_event` JSON document.
///
/// Spans become complete (`"ph":"X"`) events and counter marks become
/// thread-scoped instants (`"ph":"i"`) carrying the delta in `args`. `pid`
/// groups events per process in the viewer (0 = this process; the
/// coordinator uses `worker + 1` for remote workers) and the event's own
/// slot is unavailable here, so callers pass `tid` too.
pub fn chrome_trace_json(events: &[(u32, u32, TimelineEvent)]) -> String {
    let rows = events
        .iter()
        .map(|(pid, tid, ev)| {
            let mut row = vec![
                ("name".to_string(), Json::Str(ev.name.clone())),
                ("pid".to_string(), Json::Num(f64::from(*pid))),
                ("tid".to_string(), Json::Num(f64::from(*tid))),
                ("ts".to_string(), Json::Num(ev.t_ns as f64 / 1000.0)),
            ];
            match ev.kind {
                EventKind::Span => {
                    row.push(("ph".to_string(), Json::Str("X".to_string())));
                    row.push(("dur".to_string(), Json::Num(ev.dur_ns as f64 / 1000.0)));
                }
                EventKind::Counter => {
                    row.push(("ph".to_string(), Json::Str("i".to_string())));
                    row.push(("s".to_string(), Json::Str("t".to_string())));
                    row.push((
                        "args".to_string(),
                        Json::Obj(vec![("delta".to_string(), Json::Num(ev.delta as f64))]),
                    ));
                }
            }
            Json::Obj(row)
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(rows)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .render()
}

/// Chrome trace JSON of everything currently buffered in this process
/// (pid 0, tid = worker slot).
pub fn process_trace_json() -> String {
    let mut events = Vec::new();
    for slot in 0..=WORKER_SLOTS {
        for ev in drain_since(slot, 0).events {
            events.push((0u32, slot as u32, ev));
        }
    }
    events.sort_by_key(|(_, _, ev)| ev.t_ns);
    chrome_trace_json(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reset_timeline() {
        reset();
    }

    #[test]
    fn ring_bounds_and_drop_accounting() {
        let _lock = crate::test_lock();
        reset_timeline();
        for i in 0..(RING_CAPACITY + 10) {
            lock(3).push(EventKind::Counter, "t", i as u64, 0, 1);
        }
        let d = drain_since(3, 0);
        assert_eq!(d.events.len(), RING_CAPACITY);
        assert_eq!(d.dropped, 10, "the 10 oldest were overwritten");
        assert_eq!(d.next_seq, (RING_CAPACITY + 10) as u64);
        assert_eq!(d.events[0].seq, 10, "oldest survivor");
        // A caught-up cursor sees nothing new and nothing dropped.
        let d2 = drain_since(3, d.next_seq);
        assert!(d2.events.is_empty());
        assert_eq!(d2.dropped, 0);
        reset_timeline();
    }

    #[test]
    fn drain_is_cursor_based_and_non_destructive() {
        let _lock = crate::test_lock();
        reset_timeline();
        record_span(Some(1), "a.b", 100, 50);
        record_span(Some(1), "a.b", 200, 25);
        let first = drain_since(SpanStat::slot_for(Some(1)), 0);
        assert_eq!(first.events.len(), 2);
        let again = drain_since(SpanStat::slot_for(Some(1)), 0);
        assert_eq!(again.events.len(), 2, "reads must not consume");
        let tail = drain_since(SpanStat::slot_for(Some(1)), 1);
        assert_eq!(tail.events.len(), 1);
        assert_eq!(tail.events[0].t_ns, 200);
        reset_timeline();
    }

    #[test]
    fn mark_gates_on_both_switches() {
        let _lock = crate::test_lock();
        crate::disable();
        disable();
        reset_timeline();
        mark("tl.test", 1); // both off
        crate::enable();
        mark("tl.test", 2); // timeline still off
        enable();
        mark("tl.test", 3); // both on → records
        disable();
        crate::disable();
        let d = drain_since(crate::registry::UNATTRIBUTED_SLOT, 0);
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].delta, 3);
        assert_eq!(d.events[0].kind, EventKind::Counter);
        reset_timeline();
    }

    #[test]
    fn chrome_trace_is_valid_json_with_both_phases() {
        let _lock = crate::test_lock();
        let events = vec![
            (
                0,
                2,
                TimelineEvent {
                    seq: 0,
                    kind: EventKind::Span,
                    name: "nas.eval".into(),
                    t_ns: 1500,
                    dur_ns: 2500,
                    delta: 0,
                },
            ),
            (
                1,
                2,
                TimelineEvent {
                    seq: 1,
                    kind: EventKind::Counter,
                    name: "nas.dispatch".into(),
                    t_ns: 4000,
                    dur_ns: 0,
                    delta: 1,
                },
            ),
        ];
        let text = chrome_trace_json(&events);
        let doc = Json::parse(&text).expect("trace must parse");
        let rows = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(rows[0].get("dur").and_then(Json::as_f64), Some(2.5));
        assert_eq!(rows[1].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(
            rows[1].get("args").and_then(|a| a.get("delta")).and_then(Json::as_i64),
            Some(1)
        );
    }
}
