//! A minimal JSON tree: render and parse, std-only.
//!
//! The container builds offline, so serde is unavailable; this module
//! covers the subset the crate emits (reports, log lines) and reads back
//! (report round-trips, tooling over `report.json`). It is a strict parser
//! of standard JSON — numbers are `f64`, objects preserve insertion order.

use std::fmt::Write as _;

/// A parsed or buildable JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0 && n.fract() == 0.0).map(|n| n as u64)
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().filter(|n| n.fract() == 0.0).map(|n| n as i64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // f64 Display round-trips; non-finite values are not JSON.
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push('0');
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

/// Quote and escape a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number '{text}'"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte sequences pass
                // through unchanged since the input is a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x", "c": null}], "d": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert!(arr[2].get("c").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("q\"uote\n".into())),
            ("xs".into(), Json::Arr(vec![Json::Num(0.1), Json::Num(1e-9), Json::Num(3.0)])),
            ("none".into(), Json::Null),
            ("flag".into(), Json::Bool(false)),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
    }

    #[test]
    fn f64_display_round_trips_exactly() {
        for x in [0.123456789012345, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE] {
            let rendered = Json::Num(x).render();
            assert_eq!(Json::parse(&rendered).unwrap().as_f64(), Some(x));
        }
    }
}
