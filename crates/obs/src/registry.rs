//! The process-wide metric registry.
//!
//! Names are interned on first use behind a mutex; every subsequent access
//! goes through an `Arc` handle cached either in a call-site `OnceLock`
//! ([`crate::counter!`] and friends) or in the span layer's thread-local
//! cache, so the maps here are off the hot path by construction.

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Per-worker slots a span keeps: workers `0..WORKER_SLOTS-1` map 1:1,
/// larger ids fold into the last worker slot, and threads with no worker id
/// (the scheduler, tests, main) record into the extra trailing slot.
pub const WORKER_SLOTS: usize = 64;

/// Index of the slot for threads without an assigned worker id.
pub const UNATTRIBUTED_SLOT: usize = WORKER_SLOTS;

/// One worker's accumulated statistics for one span path.
#[derive(Debug)]
pub struct SpanSlot {
    pub count: AtomicU64,
    pub total_ns: AtomicU64,
    pub min_ns: AtomicU64,
    pub max_ns: AtomicU64,
}

impl Default for SpanSlot {
    fn default() -> Self {
        SpanSlot {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// Accumulated wall time of one span path, split per worker slot.
#[derive(Debug)]
pub struct SpanStat {
    slots: [SpanSlot; WORKER_SLOTS + 1],
}

impl Default for SpanStat {
    fn default() -> Self {
        SpanStat { slots: std::array::from_fn(|_| SpanSlot::default()) }
    }
}

impl SpanStat {
    /// Slot index for a worker id (`None` → the unattributed slot).
    pub fn slot_for(worker: Option<usize>) -> usize {
        match worker {
            Some(w) => w.min(WORKER_SLOTS - 1),
            None => UNATTRIBUTED_SLOT,
        }
    }

    /// Record one completed span occurrence.
    #[inline]
    pub fn record(&self, worker: Option<usize>, elapsed_ns: u64) {
        let slot = &self.slots[Self::slot_for(worker)];
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        slot.min_ns.fetch_min(elapsed_ns, Ordering::Relaxed);
        slot.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
    }

    /// Snapshot `(count, total_ns, min_ns, max_ns)` of one slot (min is 0
    /// when the slot is empty).
    pub fn snapshot(&self, slot: usize) -> (u64, u64, u64, u64) {
        let s = &self.slots[slot];
        let count = s.count.load(Ordering::Relaxed);
        let min = if count == 0 { 0 } else { s.min_ns.load(Ordering::Relaxed) };
        (count, s.total_ns.load(Ordering::Relaxed), min, s.max_ns.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for s in &self.slots {
            s.count.store(0, Ordering::Relaxed);
            s.total_ns.store(0, Ordering::Relaxed);
            s.min_ns.store(u64::MAX, Ordering::Relaxed);
            s.max_ns.store(0, Ordering::Relaxed);
        }
    }
}

/// Interning registry for all named spans and metrics.
#[derive(Debug, Default)]
pub struct Registry {
    spans: Mutex<HashMap<String, Arc<SpanStat>>>,
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric maps hold no invariants across panics; recover the guard.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle for the span stats under `path`, interning it on first use.
    pub fn span(&self, path: &str) -> Arc<SpanStat> {
        Arc::clone(lock(&self.spans).entry(path.to_string()).or_default())
    }

    /// Handle for the counter `name`, interning it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(lock(&self.counters).entry(name.to_string()).or_default())
    }

    /// Handle for the histogram `name`, interning it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(lock(&self.histograms).entry(name.to_string()).or_default())
    }

    /// Handle for the gauge `name`, interning it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(lock(&self.gauges).entry(name.to_string()).or_default())
    }

    /// Visit every span path (sorted) with its stats.
    pub fn for_each_span(&self, mut f: impl FnMut(&str, &SpanStat)) {
        let map = lock(&self.spans);
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        for k in keys {
            f(k, &map[k]);
        }
    }

    /// Visit every counter (sorted by name).
    pub fn for_each_counter(&self, mut f: impl FnMut(&str, &Counter)) {
        let map = lock(&self.counters);
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        for k in keys {
            f(k, &map[k]);
        }
    }

    /// Visit every histogram (sorted by name).
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &Histogram)) {
        let map = lock(&self.histograms);
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        for k in keys {
            f(k, &map[k]);
        }
    }

    /// Visit every gauge (sorted by name).
    pub fn for_each_gauge(&self, mut f: impl FnMut(&str, &Gauge)) {
        let map = lock(&self.gauges);
        let mut keys: Vec<&String> = map.keys().collect();
        keys.sort();
        for k in keys {
            f(k, &map[k]);
        }
    }

    /// Fold an externally-captured counter total into this registry,
    /// interning the name on first sight. This is the cross-process merge
    /// path (worker snapshots arriving over the wire) and therefore ungated:
    /// see [`Counter::merge_add`].
    pub fn merge_counter(&self, name: &str, value: u64) {
        self.counter(name).merge_add(value);
    }

    /// Fold an externally-captured histogram snapshot (`(inclusive upper
    /// bound, count)` bucket pairs) into this registry: see
    /// [`Histogram::merge`].
    pub fn merge_histogram(&self, name: &str, count: u64, sum: u64, buckets: &[(u64, u64)]) {
        self.histogram(name).merge(count, sum, buckets);
    }

    /// Zero all values in place, preserving every interned handle.
    pub fn reset(&self) {
        for stat in lock(&self.spans).values() {
            stat.reset();
        }
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
    }
}

/// The process-global registry all macros record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &reg.counter("y")));
    }

    #[test]
    fn span_slots_fold_and_attribute() {
        assert_eq!(SpanStat::slot_for(Some(0)), 0);
        assert_eq!(SpanStat::slot_for(Some(WORKER_SLOTS - 1)), WORKER_SLOTS - 1);
        assert_eq!(SpanStat::slot_for(Some(WORKER_SLOTS + 10)), WORKER_SLOTS - 1);
        assert_eq!(SpanStat::slot_for(None), UNATTRIBUTED_SLOT);

        let stat = SpanStat::default();
        stat.record(Some(2), 100);
        stat.record(Some(2), 300);
        stat.record(None, 7);
        let (count, total, min, max) = stat.snapshot(2);
        assert_eq!((count, total, min, max), (2, 400, 100, 300));
        let (count, total, ..) = stat.snapshot(UNATTRIBUTED_SLOT);
        assert_eq!((count, total), (1, 7));
        let (count, _, min, _) = stat.snapshot(0);
        assert_eq!((count, min), (0, 0), "empty slot reports min 0");
    }

    #[test]
    fn merge_entry_points_intern_and_accumulate() {
        let reg = Registry::new();
        reg.merge_counter("remote.events", 5);
        reg.merge_counter("remote.events", 2);
        assert_eq!(reg.counter("remote.events").get(), 7);
        reg.merge_histogram("remote.lat", 2, 30, &[(15, 1), (31, 1)]);
        let h = reg.histogram("remote.lat");
        assert_eq!((h.count(), h.sum()), (2, 30));
        assert_eq!(h.buckets()[3] + h.buckets()[4], 2);
    }

    #[test]
    fn reset_preserves_identity() {
        let _lock = crate::test_lock();
        crate::enable();
        let reg = Registry::new();
        let c = reg.counter("n");
        c.add(4);
        let s = reg.span("p");
        s.record(Some(0), 50);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(s.snapshot(0).0, 0);
        assert!(Arc::ptr_eq(&c, &reg.counter("n")), "reset must not re-intern");
        crate::disable();
    }
}
