//! The `swt` command-line tool.
//!
//! Modes:
//! * `swt run …` — run an in-process NAS (thread-pool backend) with the
//!   same knobs as `dist-run`, including the multi-fidelity pipeline.
//! * `swt dist-run …` — launch a distributed NAS run: this process becomes
//!   the coordinator and spawns `--workers` child processes of itself.
//!   `--serve ADDR` additionally exposes the in-flight run as `/status`,
//!   `/metrics` and `/trace` on a local HTTP listener.
//! * `swt dist-top --addr ADDR` — poll a serving coordinator's `/status`
//!   and render a refreshing per-worker table (a `top` for the run).
//! * `swt dist-worker --connect ADDR --worker-id N` — internal: the worker
//!   side, spawned by the coordinator (not for direct use).
//! * `swt ckpt-server --spill DIR` — run the networked checkpoint store;
//!   point `dist-run --store tcp://host:port` at it and workers fetch only
//!   the selective transfer subset over the wire (DESIGN.md §12).
//!
//! See EXPERIMENTS.md §"Distributed runs" for walkthroughs, including the
//! kill-a-worker fault-tolerance demo and §"Watching a run live".

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use swt::prelude::*;
use swt_dist::{DistConfig, JoinPlan, KillPlan, LiveRunView};
use swt_obs::json::Json;

const USAGE: &str = "\
usage:
  swt run [options]              run an in-process NAS (thread-pool backend)
    --app NAME                   cifar10|mnist|nt3|uno          [uno]
    --scale quick|full           dataset scale                  [quick]
    --scheme baseline|lp|lcs     weight-transfer scheme         [lcs]
    --candidates N               candidates to evaluate         [24]
    --workers N                  evaluator threads              [2]
    --epochs N                   epochs per estimate            [1]
    --seed N                     run seed                       [9]
    --data-seed N                synthetic dataset seed         [11]
    --trace FILE.csv             write the run trace CSV
    --canonical-trace FILE.csv   write the deterministic-columns-only trace
    --report FILE.json           write the observability report
    multi-fidelity (also accepted by dist-run):
    --rungs E1,E2,...            successive-halving epoch rungs (strictly
                                 increasing; empty = single full-budget rung)
    --eta N                      keep top 1/eta per rung        [2]
    --prefilter Q                skip the bottom Q quantile by zero-cost
                                 score at rung 0, Q in [0,1)    [0 = off]
    --early-stop W:DELTA         stop a candidate when its train loss moves
                                 < DELTA over a W-epoch window  [off]
  swt dist-run [options]         run a distributed NAS (this process coordinates)
    (accepts every `swt run` option above, plus:)
    --namespace S                checkpoint-id prefix           []
    --store DIR|tcp://H:P        shared checkpoint dir, or a running
                                 `swt ckpt-server` endpoint     [./swt_dist_store]
    --kill-after W:K             fault demo: SIGKILL worker W after K results
    --join-after K[:C]           elastic demo: C extra workers (default 1)
                                 join after K results
    --max-workers N              refuse joins beyond N live workers   [64]
    --initial-workers N          processes at launch (may be < --workers;
                                 the dispatch window stays --workers)
    --autoscale MIN:MAX          let the coordinator size its own pool inside
                                 [MIN, MAX]: grow on backlog, drain-then-retire
                                 idle spares; the dispatch window — and thus
                                 the canonical trace — stays --workers
    --target-wall-secs S         autoscale hint: keep growing while the
                                 projected finish time exceeds S
    --cost-budget S              autoscale cap: stop growing once projected
                                 worker-seconds would exceed S
    --serve ADDR                 serve the live run view over HTTP
                                 (/status JSON, /metrics Prometheus text,
                                 /trace Chrome trace JSON), e.g. 127.0.0.1:0
    --chrome-trace FILE.json     write the run's event timeline as Chrome
                                 trace JSON (chrome://tracing, Perfetto)
  swt dist-top --addr HOST:PORT  watch a serving coordinator
    --interval-ms N              poll cadence                   [500]
    --iterations N               stop after N polls (0 = forever)    [0]
    --fetch PATH                 fetch PATH once, print the raw body, exit
                                 (scripting/CI helper; no curl needed)
  swt dist-worker --connect ADDR --worker-id N    (internal)
  swt ckpt-server [options]      run the networked checkpoint store
    --bind HOST:PORT             listen address                 [127.0.0.1:7421]
    --spill DIR                  durable WTC2 spill directory   (required)
    --cache-bytes N              in-RAM LRU budget              [268435456]
    --serve HOST:PORT            expose /status, /metrics over HTTP
    --max-seconds N              exit after N seconds (demos/CI; default: run
                                 until killed)
    env SWT_CKPT_SECRET          shared HMAC secret, checked on every client
                                 Hello (empty/unset = open mode); set the same
                                 value for dist-run so workers can connect
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_local(&args[1..]),
        Some("dist-run") => dist_run(&args[1..]),
        Some("dist-top") => dist_top(&args[1..]),
        Some("dist-worker") => dist_worker(&args[1..]),
        Some("ckpt-server") => ckpt_server(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown mode `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parse the shared multi-fidelity flags into a validated
/// [`FidelityConfig`] (all off when none are given).
fn parse_fidelity(args: &[String]) -> Result<FidelityConfig, String> {
    let rungs: Vec<usize> = match opt(args, "--rungs") {
        None => vec![],
        Some(raw) => raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse().map_err(|_| format!("invalid rung in `{raw}`")))
            .collect::<Result<_, _>>()?,
    };
    let eta: usize = parse(args, "--eta", 2)?;
    let prefilter: f64 = parse(args, "--prefilter", 0.0)?;
    let convergence = match opt(args, "--early-stop") {
        None => None,
        Some(spec) => {
            let (w, d) = spec
                .split_once(':')
                .ok_or_else(|| format!("--early-stop wants W:DELTA, got `{spec}`"))?;
            Some(Convergence {
                window: w.parse().map_err(|_| format!("invalid window in `{spec}`"))?,
                min_delta: d.parse().map_err(|_| format!("invalid delta in `{spec}`"))?,
            })
        }
    };
    FidelityConfig::new(eta, rungs, prefilter, convergence).map_err(|e| e.to_string())
}

fn run_local(args: &[String]) -> ExitCode {
    match try_run_local(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("run: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn try_run_local(args: &[String]) -> Result<(), String> {
    let app_raw = opt(args, "--app").unwrap_or("uno");
    let app = AppKind::from_slug(app_raw).ok_or_else(|| format!("unknown app `{app_raw}`"))?;
    let scale = match opt(args, "--scale").unwrap_or("quick") {
        "quick" => DataScale::Quick,
        "full" => DataScale::Full,
        other => return Err(format!("unknown scale `{other}`")),
    };
    let scheme = match opt(args, "--scheme").unwrap_or("lcs") {
        "baseline" => TransferScheme::Baseline,
        "lp" => TransferScheme::Lp,
        "lcs" => TransferScheme::Lcs,
        other => return Err(format!("unknown scheme `{other}`")),
    };
    let candidates: usize = parse(args, "--candidates", 24)?;
    let workers: usize = parse(args, "--workers", 2)?;
    let epochs: usize = parse(args, "--epochs", 1)?;
    let seed: u64 = parse(args, "--seed", 9)?;
    let data_seed: u64 = parse(args, "--data-seed", 11)?;
    if candidates == 0 || workers == 0 {
        return Err("--candidates and --workers must be positive".into());
    }
    let mut nas = NasConfig::quick(scheme, candidates, workers, seed);
    nas.epochs = epochs;
    nas.fidelity = parse_fidelity(args)?;

    swt_obs::enable();
    let problem = Arc::new(app.problem(scale, data_seed));
    let space = Arc::new(SearchSpace::for_app(app));
    let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
    let t0 = std::time::Instant::now();
    let trace = run_nas(problem, space, store, &nas);
    let wall = t0.elapsed();

    println!(
        "completed {} evaluation(s) of {} candidate(s) in {:.2?} ({} app, {} scheme, seed {})",
        trace.events.len(),
        candidates,
        wall,
        app.name(),
        scheme.name(),
        seed
    );
    if nas.fidelity.enabled() {
        let report = RunReport::capture();
        println!(
            "fidelity: rungs {:?} eta {}  stopped converged {} / pruned {} / prefiltered {}",
            nas.fidelity.rungs,
            nas.fidelity.eta,
            report.counter("fidelity.stopped.converged"),
            report.counter("fidelity.stopped.pruned"),
            report.counter("fidelity.stopped.prefiltered"),
        );
    }
    if let Some(best) = trace.top_k(1).first() {
        println!("best candidate: c{} score {:.6} arch {}", best.id, best.score, best.arch);
    }
    if let Some(path) = opt(args, "--trace") {
        let path = PathBuf::from(path);
        trace.write_csv(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("trace: {}", path.display());
    }
    if let Some(path) = opt(args, "--canonical-trace") {
        let path = PathBuf::from(path);
        trace
            .write_canonical_csv(&path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("canonical trace: {}", path.display());
    }
    if let Some(path) = opt(args, "--report") {
        let report = RunReport::capture()
            .with_meta("mode", "run")
            .with_meta("app", app.name())
            .with_meta("scheme", scheme.name())
            .with_meta("candidates", candidates)
            .with_meta("workers", workers)
            .with_meta("seed", seed);
        let path = PathBuf::from(path);
        report.write_json(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("report: {}", path.display());
    }
    Ok(())
}

/// Pull the value following `--key` out of an option list.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("invalid value for {key}: `{raw}`")),
    }
}

fn dist_worker(args: &[String]) -> ExitCode {
    let (Some(connect), Some(worker_id)) = (opt(args, "--connect"), opt(args, "--worker-id"))
    else {
        eprintln!("dist-worker requires --connect and --worker-id\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Ok(worker_id) = worker_id.parse::<u64>() else {
        eprintln!("invalid --worker-id `{worker_id}`");
        return ExitCode::FAILURE;
    };
    match swt_dist::worker_main(connect, worker_id) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker {worker_id}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn ckpt_server(args: &[String]) -> ExitCode {
    match try_ckpt_server(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ckpt-server: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn try_ckpt_server(args: &[String]) -> Result<(), String> {
    let bind = opt(args, "--bind").unwrap_or("127.0.0.1:7421").to_string();
    let spill: PathBuf =
        opt(args, "--spill").ok_or_else(|| format!("--spill DIR required\n{USAGE}"))?.into();
    let mut cfg = ServerConfig::new(bind, spill);
    cfg.cache_bytes = parse(args, "--cache-bytes", cfg.cache_bytes)?;
    cfg.serve = opt(args, "--serve").map(str::to_string);
    // The secret rides in the environment, not argv (which `ps` exposes).
    cfg.secret = std::env::var("SWT_CKPT_SECRET").unwrap_or_default();
    let max_seconds: Option<u64> = match opt(args, "--max-seconds") {
        Some(raw) => {
            Some(raw.parse().map_err(|_| format!("invalid value for --max-seconds: `{raw}`"))?)
        }
        None => None,
    };

    swt_obs::enable();
    let mut server = CkptServer::start(cfg).map_err(|e| format!("start: {e}"))?;
    println!(
        "ckpt-server listening on {} (auth {})",
        server.addr(),
        if std::env::var("SWT_CKPT_SECRET").map_or(true, |s| s.is_empty()) {
            "open"
        } else {
            "shared-secret"
        }
    );
    match max_seconds {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    server.stop();
    Ok(())
}

fn dist_run(args: &[String]) -> ExitCode {
    match try_dist_run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dist-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn try_dist_run(args: &[String]) -> Result<(), String> {
    let app_raw = opt(args, "--app").unwrap_or("uno");
    let app = AppKind::from_slug(app_raw).ok_or_else(|| format!("unknown app `{app_raw}`"))?;
    let scale = match opt(args, "--scale").unwrap_or("quick") {
        "quick" => DataScale::Quick,
        "full" => DataScale::Full,
        other => return Err(format!("unknown scale `{other}`")),
    };
    let scheme = match opt(args, "--scheme").unwrap_or("lcs") {
        "baseline" => TransferScheme::Baseline,
        "lp" => TransferScheme::Lp,
        "lcs" => TransferScheme::Lcs,
        other => return Err(format!("unknown scheme `{other}`")),
    };
    let candidates: usize = parse(args, "--candidates", 24)?;
    let workers: usize = parse(args, "--workers", 2)?;
    let epochs: usize = parse(args, "--epochs", 1)?;
    let seed: u64 = parse(args, "--seed", 9)?;
    let data_seed: u64 = parse(args, "--data-seed", 11)?;
    // `--store` is either a shared directory (the default DirStore path —
    // what the A/B identity gates pin) or a `tcp://host:port` endpoint of a
    // running `swt ckpt-server`.
    let store_raw = opt(args, "--store").unwrap_or("swt_dist_store");
    let (store_dir, store_url) = if store_raw.starts_with("tcp://") {
        (PathBuf::from("swt_dist_store"), Some(store_raw.to_string()))
    } else {
        (PathBuf::from(store_raw), None)
    };
    if candidates == 0 || workers == 0 {
        return Err("--candidates and --workers must be positive".into());
    }

    let mut nas = NasConfig::quick(scheme, candidates, workers, seed);
    nas.epochs = epochs;
    nas.namespace = opt(args, "--namespace").unwrap_or("").to_string();
    nas.fidelity = parse_fidelity(args)?;
    let mut dist = DistConfig::new(app, scale, data_seed, store_dir);
    dist.store_url = store_url;
    if let Some(spec) = opt(args, "--kill-after") {
        let (w, k) =
            spec.split_once(':').ok_or_else(|| format!("--kill-after wants W:K, got `{spec}`"))?;
        dist.kill_worker_after = Some(KillPlan {
            worker: w.parse().map_err(|_| format!("invalid worker in `{spec}`"))?,
            after_results: k.parse().map_err(|_| format!("invalid count in `{spec}`"))?,
        });
    }
    if let Some(spec) = opt(args, "--join-after") {
        let (k, c) = match spec.split_once(':') {
            Some((k, c)) => (k, c),
            None => (spec, "1"),
        };
        dist.join_after = Some(JoinPlan {
            after_results: k.parse().map_err(|_| format!("invalid count in `{spec}`"))?,
            count: c.parse().map_err(|_| format!("invalid worker count in `{spec}`"))?,
        });
    }
    dist.max_workers = parse(args, "--max-workers", dist.max_workers)?;
    if dist.max_workers == 0 {
        return Err("--max-workers must be positive".into());
    }
    if let Some(spec) = opt(args, "--autoscale") {
        let (lo, hi) = spec
            .split_once(':')
            .ok_or_else(|| format!("--autoscale wants MIN:MAX, got `{spec}`"))?;
        let mut policy = PolicyConfig::bounded(
            lo.parse().map_err(|_| format!("invalid min in `{spec}`"))?,
            hi.parse().map_err(|_| format!("invalid max in `{spec}`"))?,
        );
        if let Some(raw) = opt(args, "--target-wall-secs") {
            policy.target_wall_secs =
                Some(raw.parse().map_err(|_| format!("invalid --target-wall-secs `{raw}`"))?);
        }
        if let Some(raw) = opt(args, "--cost-budget") {
            policy.cost_budget_secs =
                Some(raw.parse().map_err(|_| format!("invalid --cost-budget `{raw}`"))?);
        }
        policy.validate().map_err(|e| format!("--autoscale: {e}"))?;
        if policy.max_workers > dist.max_workers {
            return Err(format!(
                "--autoscale max {} exceeds --max-workers {}",
                policy.max_workers, dist.max_workers
            ));
        }
        dist.autoscale = Some(policy);
    } else if opt(args, "--target-wall-secs").is_some() || opt(args, "--cost-budget").is_some() {
        return Err("--target-wall-secs/--cost-budget need --autoscale MIN:MAX".into());
    }
    if let Some(raw) = opt(args, "--initial-workers") {
        let initial: usize =
            raw.parse().map_err(|_| format!("invalid value for --initial-workers: `{raw}`"))?;
        if initial == 0 || initial > dist.max_workers {
            return Err("--initial-workers must be in 1..=--max-workers".into());
        }
        dist.initial_workers = Some(initial);
    }

    // Live view + timeline only when someone will read them: the canonical
    // schedule (and trace) is identical either way, this only adds export.
    let chrome_trace = opt(args, "--chrome-trace").map(PathBuf::from);
    let serve_addr = opt(args, "--serve");
    let live = if serve_addr.is_some() || chrome_trace.is_some() {
        let live = Arc::new(LiveRunView::new());
        dist.live = Some(Arc::clone(&live));
        Some(live)
    } else {
        None
    };

    swt_obs::enable();
    let _server = match (serve_addr, &live) {
        (Some(bind), Some(live)) => {
            swt_obs::timeline::enable();
            let source: Arc<dyn ServeSource> = Arc::clone(live) as Arc<dyn ServeSource>;
            let server = ObsServer::start(bind, source)
                .map_err(|e| format!("cannot serve on {bind}: {e}"))?;
            println!(
                "live: http://{0}/status  http://{0}/metrics  http://{0}/trace",
                server.addr()
            );
            Some(server)
        }
        _ => {
            if live.is_some() {
                swt_obs::timeline::enable();
            }
            None
        }
    };

    let t0 = std::time::Instant::now();
    let (trace, stats) =
        swt_dist::run_nas_dist_with_stats(&nas, &dist).map_err(|e| e.to_string())?;
    let wall = t0.elapsed();

    println!(
        "completed {} candidates on {} workers in {:.2?} ({} app, {} scheme, seed {})",
        trace.events.len(),
        workers,
        wall,
        app.name(),
        scheme.name(),
        seed
    );
    let best = trace.top_k(1);
    if let Some(best) = best.first() {
        println!("best candidate: c{} score {:.6} arch {}", best.id, best.score, best.arch);
    }
    let report = RunReport::capture()
        .with_meta("mode", "dist-run")
        .with_meta("app", app.name())
        .with_meta("scheme", scheme.name())
        .with_meta("candidates", candidates)
        .with_meta("workers", workers)
        .with_meta("seed", seed);
    if stats.lost > 0 {
        println!(
            "fault tolerance: {} worker(s) lost, {} candidate(s) reassigned",
            stats.lost, stats.reassigned
        );
    }
    if stats.joined > 0 || stats.rejected > 0 {
        println!(
            "elasticity: {} worker(s) joined mid-run, {} join(s) rejected at max_workers={}",
            stats.joined, stats.rejected, dist.max_workers
        );
    }
    if let Some(policy) = &dist.autoscale {
        println!(
            "autoscale: {} worker(s) grown, {} retired (pool bounds {}..={})",
            stats.grown, stats.retired, policy.min_workers, policy.max_workers
        );
    }
    println!(
        "metrics merged from {} worker process(es): gemm calls {}, checkpoint bytes saved {}, \
         provider-cache hits {}",
        stats.per_worker.len(),
        report.counter_prefix_sum("tensor.gemm."),
        report.counter("ckpt.dir.saved_bytes"),
        report.counter("ckpt.cache.hits"),
    );
    if let Some(path) = opt(args, "--trace") {
        let path = PathBuf::from(path);
        trace.write_csv(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("trace: {}", path.display());
    }
    if let Some(path) = opt(args, "--canonical-trace") {
        let path = PathBuf::from(path);
        trace
            .write_canonical_csv(&path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("canonical trace: {}", path.display());
    }
    if let Some(path) = opt(args, "--report") {
        let path = PathBuf::from(path);
        report.write_json(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("report: {}", path.display());
    }
    if let (Some(path), Some(live)) = (chrome_trace, &live) {
        std::fs::write(&path, live.trace_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("chrome trace: {}", path.display());
    }
    Ok(())
}

fn dist_top(args: &[String]) -> ExitCode {
    match try_dist_top(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dist-top: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn try_dist_top(args: &[String]) -> Result<(), String> {
    let Some(addr) = opt(args, "--addr") else {
        return Err(format!("--addr HOST:PORT required\n{USAGE}"));
    };
    if let Some(path) = opt(args, "--fetch") {
        // One-shot raw fetch: the scripting/CI path (the container has no
        // curl; this keeps smoke tests std-only too).
        let body = swt_obs::serve::http_get(addr, path).map_err(|e| e.to_string())?;
        println!("{body}");
        return Ok(());
    }
    let interval: u64 = parse(args, "--interval-ms", 500)?;
    let iterations: usize = parse(args, "--iterations", 0)?;
    let mut polls = 0usize;
    loop {
        let body = swt_obs::serve::http_get(addr, "/status").map_err(|e| e.to_string())?;
        let status = Json::parse(&body).map_err(|e| format!("bad /status payload: {e}"))?;
        // ANSI clear + home, then the freshly rendered table.
        print!("\x1b[2J\x1b[H{}", render_top(&status));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        polls += 1;
        if iterations > 0 && polls >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval.max(50)));
    }
}

/// Render one `/status` document as the refreshing per-worker table.
fn render_top(status: &Json) -> String {
    let num = |k: &str| status.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let app = status.get("meta").and_then(|m| m.get("app")).and_then(Json::as_str).unwrap_or("?");
    let mut out = format!(
        "swt dist-top — app {app}  uptime {:.1}s  window {}  workers live {}\n\
         results {}  queued {}  in flight {}  ewma/candidate {:.3}s\n\n",
        num("uptime_secs"),
        num("window") as u64,
        num("workers_live") as u64,
        num("results") as u64,
        num("queue_depth") as u64,
        num("inflight") as u64,
        num("ewma_candidate_secs"),
    );
    if let Some(auto) = status.get("autoscale") {
        if auto.get("enabled") == Some(&Json::Bool(true)) {
            let an = |k: &str| auto.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let last = auto
                .get("log")
                .and_then(Json::as_array)
                .and_then(|log| log.last())
                .and_then(Json::as_str)
                .unwrap_or("-");
            out.push_str(&format!(
                "autoscale grow {} / shrink {} / hold {}  connecting {}  last: {last}\n\n",
                an("grows"),
                an("shrinks"),
                an("holds"),
                num("connecting") as u64,
            ));
        }
    }
    out.push_str(&format!(
        "{:>3} {:>5} {:>6} {:>7} {:>8} {:>9} {:>10} {:>10} {:>10} {:>9} {:>8}\n",
        "id",
        "alive",
        "seq",
        "frames",
        "results",
        "current",
        "wait_s",
        "eval_s",
        "send_s",
        "stop c/f",
        "drop"
    ));
    let workers = status.get("workers").and_then(Json::as_array).unwrap_or(&[]);
    for w in workers {
        let wf = |k: &str| w.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        // Worker-side stop reasons (converged / prefiltered counts; pruning
        // happens coordinator-side, so it is not a per-worker number).
        let stopped = |kind: &str| {
            w.get("stopped").and_then(|s| s.get(kind)).and_then(Json::as_f64).unwrap_or(0.0) as u64
        };
        let span_secs = |path: &str| {
            w.get("spans")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .find(|s| s.get("path").and_then(Json::as_str) == Some(path))
                .and_then(|s| s.get("total_secs"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        let alive = matches!(w.get("alive"), Some(Json::Bool(true)));
        let current = match w.get("current").and_then(Json::as_u64) {
            Some(id) => format!("c{id}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:>3} {:>5} {:>6} {:>7} {:>8} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>9} {:>8}\n",
            wf("id") as u64,
            if alive { "yes" } else { "no" },
            wf("seq") as u64,
            wf("frames") as u64,
            wf("results") as u64,
            current,
            span_secs("nas.queue_wait"),
            span_secs("nas.eval"),
            span_secs("nas.result_send"),
            format!("{}/{}", stopped("converged"), stopped("prefiltered")),
            wf("dropped_events") as u64,
        ));
    }
    out
}
