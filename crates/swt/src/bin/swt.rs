//! The `swt` command-line tool.
//!
//! Modes:
//! * `swt dist-run …` — launch a distributed NAS run: this process becomes
//!   the coordinator and spawns `--workers` child processes of itself.
//! * `swt dist-worker --connect ADDR --worker-id N` — internal: the worker
//!   side, spawned by the coordinator (not for direct use).
//!
//! See EXPERIMENTS.md §"Distributed runs" for walkthroughs, including the
//! kill-a-worker fault-tolerance demo.

use std::path::PathBuf;
use std::process::ExitCode;
use swt::prelude::*;
use swt_dist::{DistConfig, KillPlan};

const USAGE: &str = "\
usage:
  swt dist-run [options]         run a distributed NAS (this process coordinates)
    --app NAME                   cifar10|mnist|nt3|uno          [uno]
    --scale quick|full           dataset scale                  [quick]
    --scheme baseline|lp|lcs     weight-transfer scheme         [lcs]
    --candidates N               candidates to evaluate         [24]
    --workers N                  worker processes               [2]
    --epochs N                   epochs per estimate            [1]
    --seed N                     run seed                       [9]
    --data-seed N                synthetic dataset seed         [11]
    --namespace S                checkpoint-id prefix           []
    --store DIR                  shared checkpoint dir          [./swt_dist_store]
    --trace FILE.csv             write the run trace CSV
    --report FILE.json           write the observability report
    --kill-after W:K             fault demo: SIGKILL worker W after K results
  swt dist-worker --connect ADDR --worker-id N    (internal)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("dist-run") => dist_run(&args[1..]),
        Some("dist-worker") => dist_worker(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown mode `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the value following `--key` out of an option list.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match opt(args, key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| format!("invalid value for {key}: `{raw}`")),
    }
}

fn dist_worker(args: &[String]) -> ExitCode {
    let (Some(connect), Some(worker_id)) = (opt(args, "--connect"), opt(args, "--worker-id"))
    else {
        eprintln!("dist-worker requires --connect and --worker-id\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let Ok(worker_id) = worker_id.parse::<u64>() else {
        eprintln!("invalid --worker-id `{worker_id}`");
        return ExitCode::FAILURE;
    };
    match swt_dist::worker_main(connect, worker_id) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker {worker_id}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dist_run(args: &[String]) -> ExitCode {
    match try_dist_run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dist-run: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn try_dist_run(args: &[String]) -> Result<(), String> {
    let app_raw = opt(args, "--app").unwrap_or("uno");
    let app = AppKind::from_slug(app_raw).ok_or_else(|| format!("unknown app `{app_raw}`"))?;
    let scale = match opt(args, "--scale").unwrap_or("quick") {
        "quick" => DataScale::Quick,
        "full" => DataScale::Full,
        other => return Err(format!("unknown scale `{other}`")),
    };
    let scheme = match opt(args, "--scheme").unwrap_or("lcs") {
        "baseline" => TransferScheme::Baseline,
        "lp" => TransferScheme::Lp,
        "lcs" => TransferScheme::Lcs,
        other => return Err(format!("unknown scheme `{other}`")),
    };
    let candidates: usize = parse(args, "--candidates", 24)?;
    let workers: usize = parse(args, "--workers", 2)?;
    let epochs: usize = parse(args, "--epochs", 1)?;
    let seed: u64 = parse(args, "--seed", 9)?;
    let data_seed: u64 = parse(args, "--data-seed", 11)?;
    let store: PathBuf = parse(args, "--store", PathBuf::from("swt_dist_store"))?;
    if candidates == 0 || workers == 0 {
        return Err("--candidates and --workers must be positive".into());
    }

    let mut nas = NasConfig::quick(scheme, candidates, workers, seed);
    nas.epochs = epochs;
    nas.namespace = opt(args, "--namespace").unwrap_or("").to_string();
    let mut dist = DistConfig::new(app, scale, data_seed, store);
    if let Some(spec) = opt(args, "--kill-after") {
        let (w, k) =
            spec.split_once(':').ok_or_else(|| format!("--kill-after wants W:K, got `{spec}`"))?;
        dist.kill_worker_after = Some(KillPlan {
            worker: w.parse().map_err(|_| format!("invalid worker in `{spec}`"))?,
            after_results: k.parse().map_err(|_| format!("invalid count in `{spec}`"))?,
        });
    }

    swt_obs::enable();
    let t0 = std::time::Instant::now();
    let trace = swt_dist::run_nas_dist(&nas, &dist).map_err(|e| e.to_string())?;
    let wall = t0.elapsed();

    println!(
        "completed {} candidates on {} workers in {:.2?} ({} app, {} scheme, seed {})",
        trace.events.len(),
        workers,
        wall,
        app.name(),
        scheme.name(),
        seed
    );
    let best = trace.top_k(1);
    if let Some(best) = best.first() {
        println!("best candidate: c{} score {:.6} arch {}", best.id, best.score, best.arch);
    }
    let report = RunReport::capture()
        .with_meta("mode", "dist-run")
        .with_meta("app", app.name())
        .with_meta("scheme", scheme.name())
        .with_meta("candidates", candidates)
        .with_meta("workers", workers)
        .with_meta("seed", seed);
    let lost = report.counter("dist.workers_lost");
    let reassigned = report.counter("dist.reassigned");
    if lost > 0 {
        println!("fault tolerance: {lost} worker(s) lost, {reassigned} candidate(s) reassigned");
    }
    if let Some(path) = opt(args, "--trace") {
        let path = PathBuf::from(path);
        trace.write_csv(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("trace: {}", path.display());
    }
    if let Some(path) = opt(args, "--report") {
        let path = PathBuf::from(path);
        report.write_json(&path).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("report: {}", path.display());
    }
    Ok(())
}
