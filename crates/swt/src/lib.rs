//! # Selective Weight Transfer for Neural Architecture Search
//!
//! Facade crate re-exporting the full public API of this reproduction of
//! *"Accelerating DNN Architecture Search at Scale Using Selective Weight
//! Transfer"* (CLUSTER 2021).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use swt::prelude::*;
//!
//! // Pick an application, build its (synthetic) problem and search space.
//! let problem = Arc::new(AppKind::Uno.problem(DataScale::Quick, 42));
//! let space = Arc::new(SearchSpace::for_app(AppKind::Uno));
//! let store: Arc<dyn CheckpointStore> = Arc::new(MemStore::new());
//!
//! // Run a small NAS with LCS weight transfer.
//! let cfg = NasConfig::quick(TransferScheme::Lcs, 8, 2, 7);
//! let trace = run_nas(problem, space, store, &cfg);
//! assert_eq!(trace.events.len(), 8);
//! ```
//!
//! See the crate-level docs of the member crates for details:
//! [`swt_core`] (LP/LCS transfer), [`swt_nas`] (runtime), [`swt_space`]
//! (search spaces), [`swt_nn`] / [`swt_tensor`] (training substrate),
//! [`swt_data`] (synthetic applications), [`swt_checkpoint`],
//! [`swt_ckpt_server`] (networked checkpoint store),
//! [`swt_cluster`] (scalability simulator), [`swt_stats`] and
//! [`swt_obs`] (spans, metrics, logging, run reports).

pub use swt_checkpoint as checkpoint;
pub use swt_ckpt_server as ckpt_server;
pub use swt_cluster as cluster;
pub use swt_core as core;
pub use swt_data as data;
pub use swt_dist as dist;
pub use swt_nas as nas;
pub use swt_nn as nn;
pub use swt_obs as obs;
pub use swt_space as space;
pub use swt_stats as stats;
pub use swt_tensor as tensor;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use swt_checkpoint::{CachedStore, CheckpointIndex, CheckpointStore, DirStore, MemStore};
    pub use swt_ckpt_server::{CkptServer, RemoteStore, ServerConfig};
    pub use swt_cluster::{
        replay_policy, scenario_tasks, simulate, ClusterConfig, ReplayConfig, ReplayReport,
        ReplayView, SimReport, TaskCost,
    };
    pub use swt_core::{
        apply_transfer, lcs_match, lp_match, select_nearest, Matcher, ShapeSeq, TransferPlan,
        TransferScheme, TransferStats,
    };
    pub use swt_data::{AppKind, AppProblem, DataScale};
    pub use swt_dist::{
        run_nas_dist, run_nas_dist_with_stats, DistBackend, DistConfig, DistRunStats, JoinPlan,
        KillPlan, LiveRunView, PolicyConfig, PolicyError, PoolSnapshot, ScaleDecision, ScalePolicy,
        Telemetry, WorkerMetrics, WorkerView,
    };
    pub use swt_nas::{
        full_train_top_k, run_nas, run_nas_with_backend, run_pair_experiment, BatchEval, Candidate,
        Convergence, EvalBackend, EvalFidelity, FidelityConfig, FidelityError, NasConfig, NasTrace,
        PairSummary, ProviderPolicy, StopReason, StrategyKind, ThreadPoolBackend, TopKReport,
        TraceEvent,
    };
    pub use swt_nn::{
        Activation, Dataset, LayerSpec, Loss, Metric, Model, ModelSpec, NodeSpec, TrainConfig,
        Trainer,
    };
    pub use swt_obs::{ObsServer, RunReport, ServeSource};
    pub use swt_space::{distance, ArchSeq, SearchSpace};
    pub use swt_stats::{geometric_mean, kendall_tau, kendall_tau_b, SlotBinner, Summary};
    pub use swt_tensor::{Rng, Shape, Tensor};
}
