//! Property-based tests for tensor kernels.

use proptest::prelude::*;
use swt_tensor::{matmul, matmul_at, matmul_bt, softmax_rows, Padding, Rng, Shape, Tensor};

fn tensor_strategy(max_dim: usize, rank: usize) -> impl Strategy<Value = Tensor> {
    (prop::collection::vec(1usize..=max_dim, rank), any::<u64>()).prop_map(|(dims, seed)| {
        let mut rng = Rng::seed(seed);
        Tensor::rand_normal(dims, 0.0, 1.0, &mut rng)
    })
}

proptest! {
    #[test]
    fn shape_offset_is_bijective(dims in prop::collection::vec(1usize..5, 1..4)) {
        let shape = Shape::new(dims.clone());
        let mut seen = vec![false; shape.numel()];
        // Enumerate all multi-indices.
        let mut idx = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&idx);
            prop_assert!(!seen[off], "offset {off} visited twice");
            seen[off] = true;
            // Increment multi-index.
            let mut d = dims.len();
            loop {
                if d == 0 { break; }
                d -= 1;
                idx[d] += 1;
                if idx[d] < dims[d] { break; }
                idx[d] = 0;
                if d == 0 {
                    break;
                }
            }
            if idx.iter().all(|&v| v == 0) {
                break;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in any::<u64>(), m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let mut rng = Rng::seed(seed);
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        let c = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        let bc = b.zip_map(&c, |x, y| x + y);
        let lhs = matmul(&a, &bc);
        let mut rhs = matmul(&a, &b);
        rhs.axpy(1.0, &matmul(&a, &c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_transpose_identities(seed in any::<u64>(), m in 1usize..7, k in 1usize..7, n in 1usize..7) {
        let mut rng = Rng::seed(seed);
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        // (A B) == matmul_at(Aᵀ, B) == matmul_bt(A, Bᵀ)
        let base = matmul(&a, &b);
        prop_assert!(matmul_at(&a.transpose2(), &b).approx_eq(&base, 1e-3));
        prop_assert!(matmul_bt(&a, &b.transpose2()).approx_eq(&base, 1e-3));
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(9, 2)) {
        let s = softmax_rows(&t);
        let cols = t.shape().dim(1);
        for r in 0..t.shape().dim(0) {
            let row = &s.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn conv2d_is_linear_in_input(seed in any::<u64>()) {
        let mut rng = Rng::seed(seed);
        let x = Tensor::rand_normal([1, 5, 5, 2], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal([1, 5, 5, 2], 0.0, 1.0, &mut rng);
        let k = Tensor::rand_normal([3, 3, 2, 3], 0.0, 1.0, &mut rng);
        let sum = x.zip_map(&y, |a, b| a + b);
        let lhs = swt_tensor::conv2d_forward(&sum, &k, Padding::Same);
        let mut rhs = swt_tensor::conv2d_forward(&x, &k, Padding::Same);
        rhs.axpy(1.0, &swt_tensor::conv2d_forward(&y, &k, Padding::Same));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn pooling_output_bounded_by_input_extrema(seed in any::<u64>(), w in 4usize..12) {
        let mut rng = Rng::seed(seed);
        let x = Tensor::rand_normal([2, w, 3], 0.0, 1.0, &mut rng);
        let (out, arg) = swt_tensor::maxpool1d_forward(&x, 2, 2);
        let hi = x.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(out.data().iter().all(|&v| v <= hi));
        // Every argmax points at an element equal to the recorded output.
        for (i, &a) in arg.iter().enumerate() {
            prop_assert_eq!(x.data()[a as usize], out.data()[i]);
        }
    }

    #[test]
    fn gather_rows_preserves_content(seed in any::<u64>(), rows in 1usize..10, cols in 1usize..10) {
        let mut rng = Rng::seed(seed);
        let t = Tensor::rand_normal([rows, cols], 0.0, 1.0, &mut rng);
        let order: Vec<usize> = (0..rows).rev().collect();
        let g = t.gather_rows(&order);
        for (gi, &ri) in order.iter().enumerate() {
            for c in 0..cols {
                prop_assert_eq!(g.at(&[gi, c]), t.at(&[ri, c]));
            }
        }
    }
}
