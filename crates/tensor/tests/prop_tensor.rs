//! Property-style tests for tensor kernels.
//!
//! These are seeded randomized sweeps driven by the crate's own [`Rng`]
//! (the container builds fully offline, so no proptest). Each test draws
//! many random cases from a fixed seed, so failures replay deterministically
//! and the assertion messages carry the offending case.

use swt_tensor::{
    matmul, matmul_at, matmul_at_ws, matmul_bt, matmul_bt_ws, matmul_naive, matmul_ws,
    softmax_rows, Padding, Rng, Shape, Tensor, Workspace,
};

/// A random size in `[1, hi]`, biased toward tile edges: 1, hi, and sizes
/// adjacent to the micro-kernel tile (8/16) show up often.
fn edge_size(rng: &mut Rng, hi: usize) -> usize {
    match rng.below(6) {
        0 => 1,
        1 => hi,
        2 => 7 + rng.below(3),  // around MR = 8
        3 => 15 + rng.below(3), // around NR = 16
        _ => 1 + rng.below(hi),
    }
}

/// Reference `Aᵀ·B` / `A·Bᵀ` via explicit transpose + naive triple loop.
fn naive_at(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_naive(&a.clone().transpose2(), b)
}

fn naive_bt(a: &Tensor, b: &Tensor) -> Tensor {
    matmul_naive(a, &b.clone().transpose2())
}

/// The tentpole acceptance property: blocked `matmul`/`matmul_at`/`matmul_bt`
/// match the naive triple loop within 1e-4 on randomized non-tile-aligned
/// sizes, including the M=1 / N=1 / K=1 edges.
#[test]
fn blocked_gemm_family_matches_naive_on_random_sizes() {
    let mut rng = Rng::seed(0xC0FFEE);
    let mut ws = Workspace::new();
    for case in 0..60 {
        let m = edge_size(&mut rng, 70);
        let k = edge_size(&mut rng, 90);
        let n = edge_size(&mut rng, 70);
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        let expect = matmul_naive(&a, &b);
        assert!(matmul(&a, &b).approx_eq(&expect, 1e-4), "case {case}: matmul ({m},{k},{n})");
        let c = matmul_ws(&a, &b, &mut ws);
        assert!(c.approx_eq(&expect, 1e-4), "case {case}: matmul_ws ({m},{k},{n})");
        ws.recycle(c);

        // Aᵀ·B with A stored (k, m).
        let at = Tensor::rand_normal([k, m], 0.0, 1.0, &mut rng);
        let expect_at = naive_at(&at, &b);
        assert!(
            matmul_at(&at, &b).approx_eq(&expect_at, 1e-4),
            "case {case}: matmul_at ({k},{m},{n})"
        );
        let c = matmul_at_ws(&at, &b, &mut ws);
        assert!(c.approx_eq(&expect_at, 1e-4), "case {case}: matmul_at_ws ({k},{m},{n})");
        ws.recycle(c);

        // A·Bᵀ with B stored (n, k).
        let bt = Tensor::rand_normal([n, k], 0.0, 1.0, &mut rng);
        let expect_bt = naive_bt(&a, &bt);
        assert!(
            matmul_bt(&a, &bt).approx_eq(&expect_bt, 1e-4),
            "case {case}: matmul_bt ({m},{n},{k})"
        );
        let c = matmul_bt_ws(&a, &bt, &mut ws);
        assert!(c.approx_eq(&expect_bt, 1e-4), "case {case}: matmul_bt_ws ({m},{n},{k})");
        ws.recycle(c);
    }
}

/// Deep-K sizes force multiple KC panels, exercising the accumulate path.
#[test]
fn blocked_gemm_matches_naive_across_multiple_k_panels() {
    let mut rng = Rng::seed(0xBEEF);
    for &(m, k, n) in &[(9, 600, 21), (1, 513, 40), (33, 1024, 1), (65, 257, 17)] {
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        // Looser tolerance: summation order differs and k is large.
        assert!(matmul(&a, &b).approx_eq(&matmul_naive(&a, &b), 1e-3), "({m},{k},{n})");
    }
}

#[test]
fn shape_offset_is_bijective() {
    let mut rng = Rng::seed(1);
    for _ in 0..50 {
        let rank = 1 + rng.below(3);
        let dims: Vec<usize> = (0..rank).map(|_| 1 + rng.below(4)).collect();
        let shape = Shape::new(dims.clone());
        let mut seen = vec![false; shape.numel()];
        let mut idx = vec![0usize; dims.len()];
        loop {
            let off = shape.offset(&idx);
            assert!(!seen[off], "offset {off} visited twice for dims {dims:?}");
            seen[off] = true;
            // Increment multi-index.
            let mut d = dims.len();
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < dims[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    break;
                }
            }
            if idx.iter().all(|&v| v == 0) {
                break;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut rng = Rng::seed(2);
    for _ in 0..40 {
        let (m, k, n) = (1 + rng.below(7), 1 + rng.below(7), 1 + rng.below(7));
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        let c = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        let bc = b.zip_map(&c, |x, y| x + y);
        let lhs = matmul(&a, &bc);
        let mut rhs = matmul(&a, &b);
        rhs.axpy(1.0, &matmul(&a, &c));
        assert!(lhs.approx_eq(&rhs, 1e-3), "({m},{k},{n})");
    }
}

#[test]
fn matmul_transpose_identities() {
    let mut rng = Rng::seed(3);
    for _ in 0..40 {
        let (m, k, n) = (1 + rng.below(6), 1 + rng.below(6), 1 + rng.below(6));
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        // (A B) == matmul_at(Aᵀ, B) == matmul_bt(A, Bᵀ)
        let base = matmul(&a, &b);
        assert!(matmul_at(&a.clone().transpose2(), &b).approx_eq(&base, 1e-3));
        assert!(matmul_bt(&a, &b.clone().transpose2()).approx_eq(&base, 1e-3));
    }
}

#[test]
fn softmax_rows_are_distributions() {
    let mut rng = Rng::seed(4);
    for _ in 0..25 {
        let rows = 1 + rng.below(9);
        let cols = 1 + rng.below(9);
        let t = Tensor::rand_normal([rows, cols], 0.0, 1.0, &mut rng);
        let s = softmax_rows(&t);
        for r in 0..rows {
            let row = &s.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn conv2d_is_linear_in_input() {
    let mut rng = Rng::seed(5);
    for _ in 0..15 {
        let x = Tensor::rand_normal([1, 5, 5, 2], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal([1, 5, 5, 2], 0.0, 1.0, &mut rng);
        let k = Tensor::rand_normal([3, 3, 2, 3], 0.0, 1.0, &mut rng);
        let sum = x.zip_map(&y, |a, b| a + b);
        let lhs = swt_tensor::conv2d_forward(&sum, &k, Padding::Same);
        let mut rhs = swt_tensor::conv2d_forward(&x, &k, Padding::Same);
        rhs.axpy(1.0, &swt_tensor::conv2d_forward(&y, &k, Padding::Same));
        assert!(lhs.approx_eq(&rhs, 1e-3));
    }
}

#[test]
fn pooling_output_bounded_by_input_extrema() {
    let mut rng = Rng::seed(6);
    for _ in 0..25 {
        let w = 4 + rng.below(8);
        let x = Tensor::rand_normal([2, w, 3], 0.0, 1.0, &mut rng);
        let (out, arg) = swt_tensor::maxpool1d_forward(&x, 2, 2);
        let hi = x.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(out.data().iter().all(|&v| v <= hi));
        // Every argmax points at an element equal to the recorded output.
        for (i, &a) in arg.iter().enumerate() {
            assert_eq!(x.data()[a as usize], out.data()[i]);
        }
    }
}

#[test]
fn gather_rows_preserves_content() {
    let mut rng = Rng::seed(7);
    for _ in 0..25 {
        let rows = 1 + rng.below(9);
        let cols = 1 + rng.below(9);
        let t = Tensor::rand_normal([rows, cols], 0.0, 1.0, &mut rng);
        let order: Vec<usize> = (0..rows).rev().collect();
        let g = t.gather_rows(&order);
        for (gi, &ri) in order.iter().enumerate() {
            for c in 0..cols {
                assert_eq!(g.at(&[gi, c]), t.at(&[ri, c]));
            }
        }
    }
}
