//! GEMM hot-loop allocation discipline.
//!
//! The blocked driver's pack buffers come from the caller's `Workspace`
//! (per-thread scratch slices under parallel dispatch — see
//! `parallel::par_chunks_mut_scratch`), so at steady state the hot loop must
//! not touch the heap. Two pins:
//!
//! * **serial path**: a counting global allocator proves a warmed
//!   `matmul_ws` performs literally zero heap allocations;
//! * **parallel path**: scoped thread spawns do allocate (stacks, join
//!   handles — unavoidable with std scoped threads), so the pin is the
//!   arena's own miss counter: once warm, pack-buffer requests never fall
//!   through to the allocator.
//!
//! One `#[test]` on purpose: both checks mutate the process-wide thread
//! budget and the allocation counter, and the default multi-threaded test
//! runner would interleave them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use swt_tensor::{matmul_ws, parallel, Rng, Tensor, Workspace};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn warmed_gemm_hot_loop_never_allocates() {
    let mut rng = Rng::seed(42);
    // Big enough for the blocked path (> SMALL_FLOPS) and, at n = 512, for
    // parallel dispatch over multiple MC row blocks (> PAR_THRESHOLD).
    let a = Tensor::rand_normal([160, 300], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal([300, 512], 0.0, 1.0, &mut rng);

    // --- Serial path: zero heap allocations once warm. ---
    parallel::set_max_threads(1);
    let mut ws = Workspace::new();
    // Two warm-up passes: kernel detection, obs handle registration and the
    // arena's first-touch allocations all happen here.
    for _ in 0..2 {
        let c = matmul_ws(&a, &b, &mut ws);
        ws.recycle(c);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..3 {
        let c = matmul_ws(&a, &b, &mut ws);
        ws.recycle(c);
    }
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(during, 0, "warmed serial GEMM must not allocate ({during} allocations)");

    // --- Parallel path: pack buffers never miss the arena once warm. ---
    parallel::set_max_threads(3);
    for _ in 0..2 {
        let c = matmul_ws(&a, &b, &mut ws);
        ws.recycle(c);
    }
    let misses_before = ws.alloc_misses();
    for _ in 0..3 {
        let c = matmul_ws(&a, &b, &mut ws);
        ws.recycle(c);
    }
    let misses = ws.alloc_misses() - misses_before;
    parallel::set_max_threads(0);
    assert_eq!(misses, 0, "warmed parallel GEMM pack buffers fell through to the allocator");
}
