//! Elementwise activations and row-wise softmax.
//!
//! The MNIST-like and NT3-like search spaces choose activations from
//! `relu`, `tanh` and `sigmoid` (Section VII-A); softmax feeds the
//! categorical cross-entropy loss used by three of the four applications.

use crate::tensor::Tensor;

/// Elementwise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU gradient expressed via the *output*: `1` where the output is
/// positive. (For all three activations here the derivative is computable
/// from the forward output alone, which lets layers avoid caching inputs.)
pub fn relu_grad_from_output(y: &Tensor) -> Tensor {
    y.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Sigmoid derivative from the output: `y (1 - y)`.
pub fn sigmoid_grad_from_output(y: &Tensor) -> Tensor {
    y.map(|v| v * (1.0 - v))
}

/// Elementwise tanh. (Named `tanh_act` to avoid clashing with `f32::tanh`.)
pub fn tanh_act(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// Tanh derivative from the output: `1 - y²`.
pub fn tanh_grad_from_output(y: &Tensor) -> Tensor {
    y.map(|v| 1.0 - v * v)
}

/// Numerically stable row-wise softmax of a rank-2 tensor `(rows, classes)`.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax_rows requires rank 2");
    let (rows, cols) = (logits.shape().dim(0), logits.shape().dim(1));
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &logits.data()[r * cols..(r + 1) * cols];
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let dst = &mut out[r * cols..(r + 1) * cols];
        let mut sum = 0.0f32;
        for (d, &x) in dst.iter_mut().zip(row) {
            let e = (x - maxv).exp();
            *d = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for d in dst.iter_mut() {
            *d *= inv;
        }
    }
    Tensor::from_vec([rows, cols], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        let x = Tensor::from_vec([3], vec![-3.0, 0.0, 3.0]);
        let y = sigmoid(&x);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!((y.data()[0] + y.data()[2] - 1.0).abs() < 1e-6);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn activation_gradients_match_numeric() {
        let mut rng = Rng::seed(1);
        let x = Tensor::rand_normal([32], 0.5, 1.0, &mut rng);
        let eps = 1e-3f32;
        type ActFn = fn(&Tensor) -> Tensor;
        let cases: Vec<(ActFn, ActFn, &str)> = vec![
            (sigmoid, sigmoid_grad_from_output, "sigmoid"),
            (tanh_act, tanh_grad_from_output, "tanh"),
            (relu, relu_grad_from_output, "relu"),
        ];
        for (f, g, name) in cases {
            let y = f(&x);
            let grad = g(&y);
            for i in 0..x.numel() {
                if name == "relu" && x.data()[i].abs() < 2.0 * eps {
                    continue; // skip the kink
                }
                let mut plus = x.clone();
                plus.data_mut()[i] += eps;
                let mut minus = x.clone();
                minus.data_mut()[i] -= eps;
                let num = (f(&plus).data()[i] - f(&minus).data()[i]) / (2.0 * eps);
                assert!(
                    (num - grad.data()[i]).abs() < 1e-2,
                    "{name}[{i}]: analytic {} numeric {num}",
                    grad.data()[i]
                );
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed(2);
        let x = Tensor::rand_normal([5, 7], 0.0, 3.0, &mut rng);
        let s = softmax_rows(&x);
        for r in 0..5 {
            let sum: f32 = s.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec([1, 3], vec![1000.0, 1001.0, 1002.0]);
        let s = softmax_rows(&x);
        assert!(s.data().iter().all(|v| v.is_finite()));
        let y = Tensor::from_vec([1, 3], vec![0.0, 1.0, 2.0]);
        assert!(s.approx_eq(&softmax_rows(&y), 1e-6));
    }

    #[test]
    fn softmax_orders_preserved() {
        let x = Tensor::from_vec([1, 4], vec![0.1, 2.0, -1.0, 0.5]);
        let s = softmax_rows(&x);
        assert_eq!(s.row_argmax(), vec![1]);
    }
}
