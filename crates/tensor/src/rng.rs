//! Seeded, splittable random number generation.
//!
//! The paper repeats every NAS experiment five times with different seeds and
//! notes that GPU nondeterminism makes exact repetition impossible on real
//! hardware. Our CPU reproduction is fully deterministic: every source of
//! randomness (weight init, dropout masks, batch shuffling, search-strategy
//! sampling, dataset synthesis) derives from one root `u64` through
//! [`Rng::fork`], so independent components never share a stream and runs
//! replay bit-for-bit.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded through splitmix64, so the crate carries no
//! external RNG dependency and builds offline.

/// A seeded RNG with normal/uniform sampling and deterministic forking.
///
/// Internally xoshiro256++: 256 bits of state, 64-bit output, period
/// `2^256 - 1`. Plenty for simulation workloads; not cryptographic.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Construct from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        // Expand the seed through splitmix64 as the xoshiro authors
        // recommend; the chain never produces the all-zero state.
        let mut x = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            *s = splitmix64(x);
        }
        Rng { state }
    }

    /// Derive an independent stream for a named sub-component.
    ///
    /// Mixing is done with splitmix64 over `(seed-draw, stream)` so forks with
    /// different `stream` values are decorrelated even for adjacent ids.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed(splitmix64(base ^ splitmix64(stream)))
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(hi > lo);
        self.next_f32() * (hi - lo) + lo
    }

    /// Standard normal sample (Box–Muller; avoids a distribution dependency).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f64();
            let u2 = self.next_f64();
            if u1 > f64::MIN_POSITIVE {
                let r = (-2.0 * u1.ln()).sqrt();
                return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
            }
        }
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased bounded sampling).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (n as u128);
            let low = wide as u64;
            if low >= n.wrapping_neg() % n {
                return (wide >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// `k` distinct indices sampled uniformly from `[0, n)` (partial
    /// Fisher–Yates). Used for the evolution strategy's tournament sample
    /// (`S` out of `N`, Algorithm 1 line 6).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Raw u64 draw (for deriving child seeds).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform `f32` in `[0, 1)` from the high 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed(1);
        let mut b = Rng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = Rng::seed(7);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Rng::seed(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed(9);
        for _ in 0..1000 {
            let x = rng.uniform(-0.25, 0.75);
            assert!((-0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn uniform_fills_range() {
        // The [0,1) mantissa construction must reach both tails.
        let mut rng = Rng::seed(17);
        let xs: Vec<f32> = (0..4000).map(|_| rng.uniform(0.0, 1.0)).collect();
        assert!(xs.iter().any(|&x| x < 0.05));
        assert!(xs.iter().any(|&x| x > 0.95));
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn below_covers_support() {
        let mut rng = Rng::seed(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::seed(21);
        let n = 8;
        let mut counts = vec![0usize; n];
        let draws = 64_000;
        for _ in 0..draws {
            counts[rng.below(n)] += 1;
        }
        let expect = draws / n;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.05, "bucket {i}: {c} vs {expect}");
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seed(11);
        for _ in 0..100 {
            let s = rng.sample_indices(32, 16);
            assert_eq!(s.len(), 16);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 16, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < 32));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left input ordered");
    }
}
