//! Minimal data-parallel helpers on std scoped threads.
//!
//! The repository used to route CPU parallelism through a global rayon pool;
//! that pool multiplied with the NAS evaluator's own worker threads
//! (`workers × rayon_threads` runnable threads) and cannot be built offline.
//! This module replaces it with two primitives on `std::thread::scope` plus a
//! process-wide thread *budget* that the NAS runner sizes from
//! `NasConfig.workers`, so kernel parallelism and evaluator parallelism share
//! one explicit cap instead of multiplying.
//!
//! Work items are handed out through a shared cursor, so uneven items (the
//! last short chunk, variable-cost candidates) balance automatically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// `0` means "auto": use `std::thread::available_parallelism`.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of threads any parallel helper in this process may use.
/// `0` restores the default (hardware parallelism). The NAS runner calls this
/// with `hardware / workers` so evaluator workers and kernel parallelism do
/// not multiply.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// RAII guard restoring a previous thread budget; see [`scoped_max_threads`].
#[must_use = "dropping the guard immediately restores the previous budget"]
pub struct ThreadBudgetGuard {
    prev: usize,
}

impl Drop for ThreadBudgetGuard {
    fn drop(&mut self) {
        MAX_THREADS.store(self.prev, Ordering::Relaxed);
    }
}

/// Set the thread budget like [`set_max_threads`], returning a guard that
/// restores the previous setting (including the `0` auto default) when
/// dropped. The NAS runner holds one per run, so a quick run following a
/// paper run in the same process (bench A/Bs, test binaries) does not
/// inherit the previous run's cap.
pub fn scoped_max_threads(n: usize) -> ThreadBudgetGuard {
    ThreadBudgetGuard { prev: MAX_THREADS.swap(n, Ordering::Relaxed) }
}

/// The current effective thread budget (always ≥ 1).
pub fn max_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

fn threads_for(items: usize) -> usize {
    max_threads().min(items).max(1)
}

/// Apply `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of `data`
/// (last chunk may be short), in parallel when the thread budget allows.
///
/// Chunks are disjoint `&mut` slices, so this is race-free by construction.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads_for(n_chunks);
    if threads <= 1 {
        swt_obs::counter!("tensor.pool.serial_chunks").add(n_chunks as u64);
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    swt_obs::counter!("tensor.pool.dispatches").inc();
    swt_obs::counter!("tensor.pool.tasks").add(n_chunks as u64);
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Idle time = waiting on the shared cursor for the next work
                // item; per-thread accumulation keeps the measurement out of
                // the contended region.
                let measure = swt_obs::enabled();
                let mut idle_ns = 0u64;
                loop {
                    let wait = measure.then(Instant::now);
                    let next = queue.lock().unwrap().next();
                    if let Some(t0) = wait {
                        idle_ns += t0.elapsed().as_nanos() as u64;
                    }
                    match next {
                        Some((i, chunk)) => f(i, chunk),
                        None => break,
                    }
                }
                if measure {
                    swt_obs::histogram!("tensor.pool.idle_ns").observe(idle_ns);
                }
            });
        }
    });
}

/// [`par_chunks_mut`] with per-thread scratch: `scratch` is split into
/// disjoint `piece_len`-sized pieces, one owned by each worker thread, and
/// `f(chunk_index, chunk, piece)` receives its worker's piece on every call.
///
/// This is how hot loops stay allocation-free under parallel dispatch: the
/// caller sizes `scratch` from its [`crate::Workspace`] for
/// `max_threads().min(n_chunks)` pieces and lends slices out, instead of
/// every task allocating its own buffer. At most `scratch.len() / piece_len`
/// threads run, so a short `scratch` degrades parallelism, never safety.
pub fn par_chunks_mut_scratch<T, S, F>(
    data: &mut [T],
    chunk_len: usize,
    scratch: &mut [S],
    piece_len: usize,
    f: F,
) where
    T: Send,
    S: Send,
    F: Fn(usize, &mut [T], &mut [S]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert!(piece_len > 0 && scratch.len() >= piece_len, "scratch must hold >= 1 piece");
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = threads_for(n_chunks).min(scratch.len() / piece_len);
    if threads <= 1 {
        swt_obs::counter!("tensor.pool.serial_chunks").add(n_chunks as u64);
        let piece = &mut scratch[..piece_len];
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk, piece);
        }
        return;
    }
    swt_obs::counter!("tensor.pool.dispatches").inc();
    swt_obs::counter!("tensor.pool.tasks").add(n_chunks as u64);
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    let queue = &queue;
    let f = &f;
    std::thread::scope(|s| {
        for piece in scratch.chunks_mut(piece_len).take(threads) {
            s.spawn(move || {
                let measure = swt_obs::enabled();
                let mut idle_ns = 0u64;
                loop {
                    let wait = measure.then(Instant::now);
                    let next = queue.lock().unwrap().next();
                    if let Some(t0) = wait {
                        idle_ns += t0.elapsed().as_nanos() as u64;
                    }
                    match next {
                        Some((i, chunk)) => f(i, chunk, piece),
                        None => break,
                    }
                }
                if measure {
                    swt_obs::histogram!("tensor.pool.idle_ns").observe(idle_ns);
                }
            });
        }
    });
}

/// Map `f(index, item)` over `items`, preserving order, in parallel when the
/// thread budget allows.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads_for(items.len());
    if threads <= 1 {
        swt_obs::counter!("tensor.pool.serial_tasks").add(items.len() as u64);
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    swt_obs::counter!("tensor.pool.dispatches").inc();
    swt_obs::counter!("tensor.pool.tasks").add(items.len() as u64);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    {
        let queue = Mutex::new(out.iter_mut().zip(items).enumerate());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let measure = swt_obs::enabled();
                    let mut idle_ns = 0u64;
                    loop {
                        let wait = measure.then(Instant::now);
                        let next = queue.lock().unwrap().next();
                        if let Some(t0) = wait {
                            idle_ns += t0.elapsed().as_nanos() as u64;
                        }
                        match next {
                            Some((i, (slot, item))) => *slot = Some(f(i, item)),
                            None => break,
                        }
                    }
                    if measure {
                        swt_obs::histogram!("tensor.pool.idle_ns").observe(idle_ns);
                    }
                });
            }
        });
    }
    out.into_iter().map(|r| r.expect("par_map slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let items: Vec<u32> = Vec::new();
        assert!(par_map(&items, |_, &x| x).is_empty());
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 103];
        par_chunks_mut(&mut data, 10, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (pos, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (pos / 10) as u32, "pos {pos}");
        }
    }

    #[test]
    fn par_chunks_mut_scratch_visits_every_chunk_with_a_private_piece() {
        let mut data = vec![0u32; 97];
        // Scratch sized for at most 2 workers; pieces are tagged per use so
        // the test catches any sharing of one piece by two live tasks.
        let mut scratch = vec![0u32; 2 * 4];
        par_chunks_mut_scratch(&mut data, 10, &mut scratch, 4, |i, chunk, piece| {
            assert_eq!(piece.len(), 4);
            piece.fill(i as u32 + 1);
            for v in chunk.iter_mut() {
                *v = piece[3];
            }
        });
        for (pos, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (pos / 10) as u32, "pos {pos}");
        }
    }

    #[test]
    fn budget_is_clamped_to_at_least_one() {
        set_max_threads(1);
        assert_eq!(max_threads(), 1);
        let items = vec![1u32, 2, 3];
        assert_eq!(par_map(&items, |_, &x| x + 1), vec![2, 3, 4]);
        set_max_threads(0);
        assert!(max_threads() >= 1);
        // The scoped guard restores whatever was set before it, including
        // the auto default (this test is the only budget mutator in this
        // binary, so the sequence is race-free).
        set_max_threads(3);
        {
            let _g = scoped_max_threads(1);
            assert_eq!(max_threads(), 1);
        }
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
    }
}
