//! Tensor shapes.
//!
//! `Shape` is the unit the paper's matchers compare: two tensors are
//! *transferable* iff their shapes are identical (Section IV-A), so `Shape`
//! implements `Eq + Hash + Ord` and a display form matching the paper's
//! `(f, w, h)` notation.
//!
//! Shapes are stored **inline** up to rank 4 (every model tensor in the
//! repository is rank ≤ 4), so constructing a tensor's shape never touches
//! the heap on the training hot path; higher ranks — possible only through
//! externally decoded checkpoints — spill to a `Vec`.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Ranks up to this are stored without heap allocation.
const INLINE_RANK: usize = 4;

#[derive(Clone)]
enum Dims {
    Inline { len: u8, dims: [usize; INLINE_RANK] },
    Heap(Vec<usize>),
}

/// A dense row-major tensor shape (dimension sizes, outermost first).
#[derive(Clone)]
pub struct Shape(Dims);

impl Shape {
    /// Build a shape from dimension sizes.
    pub fn new(dims: impl Into<Shape>) -> Self {
        dims.into()
    }

    fn from_slice(d: &[usize]) -> Self {
        if d.len() <= INLINE_RANK {
            let mut dims = [0usize; INLINE_RANK];
            dims[..d.len()].copy_from_slice(d);
            Shape(Dims::Inline { len: d.len() as u8, dims })
        } else {
            Shape(Dims::Heap(d.to_vec()))
        }
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape::from_slice(&[])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims().len()
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        match &self.0 {
            Dims::Inline { len, dims } => &dims[..*len as usize],
            Dims::Heap(v) => v,
        }
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims()[i]
    }

    /// Total number of elements (1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Row-major strides (elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let dims = self.dims();
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index.
    ///
    /// # Panics
    /// Panics if the index rank mismatches or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let dims = self.dims();
        let mut off = 0;
        let mut stride = 1;
        for i in (0..dims.len()).rev() {
            assert!(index[i] < dims[i], "index {index:?} out of shape {self}");
            off += index[i] * stride;
            stride *= dims[i];
        }
        off
    }

    /// Bytes occupied by an `f32` tensor of this shape. Fig. 11 reports
    /// checkpoint sizes, which are dominated by this quantity.
    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }
}

// Equality, ordering and hashing go through `dims()` so the two storage
// representations are indistinguishable (hashing a slice matches `Vec`'s
// `Hash`, and slice `Ord` is the lexicographic order the matchers expect).
impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.dims() == other.dims()
    }
}

impl Eq for Shape {}

impl Hash for Shape {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.dims().hash(state);
    }
}

impl PartialOrd for Shape {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Shape {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dims().cmp(other.dims())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        if dims.len() > INLINE_RANK {
            Shape(Dims::Heap(dims))
        } else {
            Shape::from_slice(&dims)
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::from_slice(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::from_slice(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new([2, 3]);
        let mut seen = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                seen.push(s.offset(&[i, j]));
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of shape")]
    fn offset_rejects_out_of_range() {
        Shape::new([2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Shape::new([3, 3, 16]).to_string(), "(3, 3, 16)");
        assert_eq!(Shape::new([128, 10]).to_string(), "(128, 10)");
    }

    #[test]
    fn equality_is_exact() {
        assert_eq!(Shape::new([4, 4]), Shape::new(vec![4, 4]));
        assert_ne!(Shape::new([4, 4]), Shape::new([4, 4, 1]));
        assert_ne!(Shape::new([4, 4]), Shape::new([4, 5]));
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Shape::new([10, 10]).size_bytes(), 400);
    }

    #[test]
    fn inline_and_heap_representations_are_indistinguishable() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Rank 5 spills to the heap; rank ≤ 4 stays inline. Behaviour must
        // not depend on which representation a shape landed in.
        let heap = Shape::new(vec![2, 3, 4, 5, 6]);
        assert_eq!(heap.rank(), 5);
        assert_eq!(heap.numel(), 720);
        assert_eq!(heap.to_string(), "(2, 3, 4, 5, 6)");
        assert_eq!(heap, Shape::new([2usize, 3, 4, 5, 6]));
        assert!(Shape::new([2, 3, 4, 5]) < heap);

        let a = Shape::new([7, 8]);
        let b = Shape::new(vec![7, 8]);
        assert_eq!(a, b);
        let hash = |s: &Shape| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_eq!(format!("{a:?}"), "Shape([7, 8])");
    }
}
