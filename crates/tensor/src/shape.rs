//! Tensor shapes.
//!
//! `Shape` is the unit the paper's matchers compare: two tensors are
//! *transferable* iff their shapes are identical (Section IV-A), so `Shape`
//! implements `Eq + Hash + Ord` and a display form matching the paper's
//! `(f, w, h)` notation.

use std::fmt;

/// A dense row-major tensor shape (dimension sizes, outermost first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Build a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index.
    ///
    /// # Panics
    /// Panics if the index rank mismatches or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for i in (0..self.rank()).rev() {
            assert!(index[i] < self.0[i], "index {index:?} out of shape {self}");
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Bytes occupied by an `f32` tensor of this shape. Fig. 11 reports
    /// checkpoint sizes, which are dominated by this quantity.
    pub fn size_bytes(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new([5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new([2, 3]);
        let mut seen = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                seen.push(s.offset(&[i, j]));
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of shape")]
    fn offset_rejects_out_of_range() {
        Shape::new([2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Shape::new([3, 3, 16]).to_string(), "(3, 3, 16)");
        assert_eq!(Shape::new([128, 10]).to_string(), "(128, 10)");
    }

    #[test]
    fn equality_is_exact() {
        assert_eq!(Shape::new([4, 4]), Shape::new(vec![4, 4]));
        assert_ne!(Shape::new([4, 4]), Shape::new([4, 4, 1]));
        assert_ne!(Shape::new([4, 4]), Shape::new([4, 5]));
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Shape::new([10, 10]).size_bytes(), 400);
    }
}
