//! Reusable scratch-buffer arena for the training hot path.
//!
//! Steady-state training runs the same shapes batch after batch; the arena
//! lets every kernel and layer reuse last batch's buffers instead of hitting
//! the allocator. Ownership rule: **one `Workspace` per evaluator thread**
//! (the NAS evaluator owns one and hands it to the model it is training);
//! a `Workspace` is never shared across threads.
//!
//! Protocol: `take`/`take_zeroed` a buffer, wrap it in a [`Tensor`] if
//! needed, and `give`/`recycle` it back once the values are dead. After the
//! first batch warms the pool, `take` is a free-list pop.

use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;

thread_local! {
    /// Fallback arena for the workspace-less convenience wrappers
    /// (`matmul`, `conv2d_forward`, …).
    static LOCAL_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Run `f` with this thread's fallback workspace. Used by the convenience
/// wrappers so even workspace-unaware callers reuse pack buffers across
/// calls. `f` must not re-enter `with_thread_workspace`.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    LOCAL_WS.with(|ws| f(&mut ws.borrow_mut()))
}

/// A free-list of `f32` buffers, recycled across batches.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f32>>,
    alloc_misses: u64,
}

impl Workspace {
    /// An empty arena.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A buffer of exactly `len` elements with **unspecified contents**
    /// (recycled values or zeros). Use [`take_zeroed`](Self::take_zeroed)
    /// when the kernel does not overwrite every element.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.pop_fit(len);
        // Growing pads only the delta with zeros; shrinking is a truncate.
        // Either way the existing prefix is left as-is — that is the point.
        buf.resize(len, 0.0);
        buf
    }

    /// A buffer of `len` zeros.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.pop_fit(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// A tensor of `shape` with unspecified contents (every element must be
    /// overwritten by the caller).
    pub fn take_tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.take(shape.numel());
        Tensor::from_vec(shape, buf)
    }

    /// A tensor of `shape` filled with zeros.
    pub fn take_tensor_zeroed(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let buf = self.take_zeroed(shape.numel());
        Tensor::from_vec(shape, buf)
    }

    /// Return a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Return a tensor's storage to the pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        self.give(t.into_vec());
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// How many `take`s had to hit the allocator (pool empty, or no pooled
    /// buffer large enough). At steady state on a warmed arena this stops
    /// moving; the allocation-discipline tests pin that.
    pub fn alloc_misses(&self) -> u64 {
        self.alloc_misses
    }

    /// Pop the smallest pooled buffer whose capacity covers `len`; if none
    /// fits, pop the largest (its one realloc upgrades the pool for next
    /// time); if the pool is empty, allocate fresh.
    fn pop_fit(&mut self, len: usize) -> Vec<f32> {
        if self.free.is_empty() {
            self.alloc_misses += 1;
            return Vec::with_capacity(len);
        }
        let mut best: Option<usize> = None; // smallest capacity >= len
        let mut largest = 0usize;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
            if buf.capacity() >= self.free[largest].capacity() {
                largest = i;
            }
        }
        if best.is_none() {
            // The largest pooled buffer still has to grow for this request.
            self.alloc_misses += 1;
        }
        self.free.swap_remove(best.unwrap_or(largest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_storage() {
        let mut ws = Workspace::new();
        let buf = ws.take(256);
        let ptr = buf.as_ptr();
        ws.give(buf);
        let again = ws.take(128);
        assert_eq!(again.as_ptr(), ptr, "expected the pooled buffer back");
        assert_eq!(again.len(), 128);
    }

    #[test]
    fn take_zeroed_really_zeroes() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(64);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ws.give(buf);
        let z = ws.take_zeroed(64);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(1024));
        ws.give(Vec::with_capacity(64));
        ws.give(Vec::with_capacity(256));
        let buf = ws.take(100);
        assert_eq!(buf.capacity(), 256);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn alloc_misses_stop_once_the_pool_is_warm() {
        let mut ws = Workspace::new();
        let b = ws.take(512);
        assert_eq!(ws.alloc_misses(), 1);
        ws.give(b);
        let b = ws.take(256); // pooled buffer covers it
        assert_eq!(ws.alloc_misses(), 1);
        ws.give(b);
        let b = ws.take(1024); // largest pooled buffer must grow
        assert_eq!(ws.alloc_misses(), 2);
        ws.give(b);
        let b = ws.take(1024);
        assert_eq!(ws.alloc_misses(), 2);
        ws.give(b);
    }

    #[test]
    fn tensor_roundtrip_is_allocation_free_after_warmup() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor([4, 8]);
        let ptr = t.data().as_ptr();
        ws.recycle(t);
        let t2 = ws.take_tensor_zeroed([8, 4]);
        assert_eq!(t2.data().as_ptr(), ptr);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }
}
