//! 1-D convolution (NWC) via im2col, forward and backward.
//!
//! NT3 classifies RNA-sequence gene-expression profiles with 1-D
//! convolutions over very wide inputs (Section VII-A); this is the kernel
//! backing the NT3-like search space. Implemented directly rather than as a
//! degenerate conv2d so the hot path stays branch-light.

use crate::conv2d::Padding;
use crate::matmul::{matmul, matmul_at, matmul_bt};
use crate::tensor::Tensor;

fn check_conv1d(input: &Tensor, kernel: &Tensor) -> (usize, usize, usize, usize, usize) {
    assert_eq!(input.shape().rank(), 3, "conv1d input must be (n, w, c) rank 3");
    assert_eq!(kernel.shape().rank(), 3, "conv1d kernel must be (k, c, f)");
    let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
    let (k, kc, f) = (kernel.shape().dim(0), kernel.shape().dim(1), kernel.shape().dim(2));
    assert_eq!(c, kc, "conv1d channel mismatch: input {c}, kernel {kc}");
    (n, w, c, k, f)
}

fn im2col1d(input: &Tensor, k: usize, padding: Padding) -> (Tensor, usize) {
    let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
    let ow = padding.out_size(w, k);
    let (pl, _) = padding.pads(k);
    let cols = k * c;
    let mut m = vec![0.0f32; n * ow * cols];
    let src = input.data();
    for ni in 0..n {
        for ox in 0..ow {
            let row = (ni * ow + ox) * cols;
            for kx in 0..k {
                let ix = ox as isize + kx as isize - pl as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                let dst = row + kx * c;
                let s = (ni * w + ix as usize) * c;
                m[dst..dst + c].copy_from_slice(&src[s..s + c]);
            }
        }
    }
    (Tensor::from_vec([n * ow, cols], m), ow)
}

fn col2im1d(dcol: &Tensor, n: usize, w: usize, c: usize, k: usize, padding: Padding) -> Tensor {
    let ow = padding.out_size(w, k);
    let (pl, _) = padding.pads(k);
    let cols = k * c;
    let mut out = Tensor::zeros([n, w, c]);
    let dst = out.data_mut();
    let src = dcol.data();
    for ni in 0..n {
        for ox in 0..ow {
            let row = (ni * ow + ox) * cols;
            for kx in 0..k {
                let ix = ox as isize + kx as isize - pl as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                let s = row + kx * c;
                let d = (ni * w + ix as usize) * c;
                for ci in 0..c {
                    dst[d + ci] += src[s + ci];
                }
            }
        }
    }
    out
}

/// Forward 1-D convolution.
///
/// * `input` — `(n, w, c)`
/// * `kernel` — `(k, c, f)`
///
/// Returns `(n, ow, f)`.
pub fn conv1d_forward(input: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
    let (n, _w, c, k, f) = check_conv1d(input, kernel);
    let (col, ow) = im2col1d(input, k, padding);
    let w2 = kernel.clone().reshape([k * c, f]);
    matmul(&col, &w2).reshape([n, ow, f])
}

/// Backward 1-D convolution: `(d_input, d_kernel)` for upstream `dout (n, ow, f)`.
pub fn conv1d_backward(
    input: &Tensor,
    kernel: &Tensor,
    dout: &Tensor,
    padding: Padding,
) -> (Tensor, Tensor) {
    let (n, w, c, k, f) = check_conv1d(input, kernel);
    let (col, ow) = im2col1d(input, k, padding);
    assert_eq!(dout.shape().dims(), &[n, ow, f], "conv1d_backward: bad dout {}", dout.shape());
    let dout2 = dout.clone().reshape([n * ow, f]);
    let dkernel = matmul_at(&col, &dout2).reshape([k, c, f]);
    let w2 = kernel.clone().reshape([k * c, f]);
    let dcol = matmul_bt(&dout2, &w2);
    let dinput = col2im1d(&dcol, n, w, c, k, padding);
    (dinput, dkernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive_conv1d(input: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
        let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
        let (k, _, f) = (kernel.shape().dim(0), kernel.shape().dim(1), kernel.shape().dim(2));
        let ow = padding.out_size(w, k);
        let (pl, _) = padding.pads(k);
        let mut out = Tensor::zeros([n, ow, f]);
        for ni in 0..n {
            for ox in 0..ow {
                for fi in 0..f {
                    let mut acc = 0.0;
                    for kx in 0..k {
                        let ix = ox as isize + kx as isize - pl as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        for ci in 0..c {
                            acc += input.at(&[ni, ix as usize, ci]) * kernel.at(&[kx, ci, fi]);
                        }
                    }
                    out.set(&[ni, ox, fi], acc);
                }
            }
        }
        out
    }

    #[test]
    fn shapes() {
        let input = Tensor::zeros([2, 16, 4]);
        let kernel = Tensor::zeros([5, 4, 8]);
        assert_eq!(conv1d_forward(&input, &kernel, Padding::Valid).shape().dims(), &[2, 12, 8]);
        assert_eq!(conv1d_forward(&input, &kernel, Padding::Same).shape().dims(), &[2, 16, 8]);
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng::seed(10);
        for &padding in &[Padding::Valid, Padding::Same] {
            for &(w, c, k, f) in &[(9, 1, 3, 2), (12, 3, 4, 5), (7, 2, 1, 1)] {
                let input = Tensor::rand_normal([2, w, c], 0.0, 1.0, &mut rng);
                let kernel = Tensor::rand_normal([k, c, f], 0.0, 1.0, &mut rng);
                let fast = conv1d_forward(&input, &kernel, padding);
                let slow = naive_conv1d(&input, &kernel, padding);
                assert!(fast.approx_eq(&slow, 1e-4), "{padding:?} ({w},{c},{k},{f})");
            }
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = Rng::seed(11);
        for &padding in &[Padding::Valid, Padding::Same] {
            let input = Tensor::rand_normal([1, 8, 2], 0.0, 1.0, &mut rng);
            let kernel = Tensor::rand_normal([3, 2, 3], 0.0, 0.5, &mut rng);
            let out = conv1d_forward(&input, &kernel, padding);
            let dout = Tensor::ones(out.shape().dims().to_vec());
            let (dinput, dkernel) = conv1d_backward(&input, &kernel, &dout, padding);
            let eps = 1e-2f32;
            for idx in (0..input.numel()).step_by(3) {
                let mut plus = input.clone();
                plus.data_mut()[idx] += eps;
                let mut minus = input.clone();
                minus.data_mut()[idx] -= eps;
                let num = (conv1d_forward(&plus, &kernel, padding).sum()
                    - conv1d_forward(&minus, &kernel, padding).sum())
                    / (2.0 * eps);
                assert!((num - dinput.data()[idx]).abs() < 1e-2, "{padding:?} dinput[{idx}]");
            }
            for kidx in 0..kernel.numel() {
                let mut plus = kernel.clone();
                plus.data_mut()[kidx] += eps;
                let mut minus = kernel.clone();
                minus.data_mut()[kidx] -= eps;
                let num = (conv1d_forward(&input, &plus, padding).sum()
                    - conv1d_forward(&input, &minus, padding).sum())
                    / (2.0 * eps);
                assert!((num - dkernel.data()[kidx]).abs() < 1e-2, "{padding:?} dkernel[{kidx}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank 3")]
    fn wrong_rank_panics() {
        conv1d_forward(&Tensor::zeros([2, 4]), &Tensor::zeros([3, 1, 1]), Padding::Valid);
    }
}
