//! 1-D convolution (NWC) via im2col, forward and backward.
//!
//! NT3 classifies RNA-sequence gene-expression profiles with 1-D
//! convolutions over very wide inputs (Section VII-A); this is the kernel
//! backing the NT3-like search space. Implemented directly rather than as a
//! degenerate conv2d so the hot path stays branch-light.
//!
//! Like the 2-D path, `im2col`/`col2im` parallelise over the batch and the
//! `_ws` variants draw all scratch from a caller-owned [`Workspace`].

use crate::conv2d::Padding;
use crate::matmul::{gemm_at_rowmajor, gemm_bt_rowmajor, gemm_rowmajor};
use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace::{with_thread_workspace, Workspace};

fn check_conv1d(input: &Tensor, kernel: &Tensor) -> (usize, usize, usize, usize, usize) {
    assert_eq!(input.shape().rank(), 3, "conv1d input must be (n, w, c) rank 3");
    assert_eq!(kernel.shape().rank(), 3, "conv1d kernel must be (k, c, f)");
    let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
    let (k, kc, f) = (kernel.shape().dim(0), kernel.shape().dim(1), kernel.shape().dim(2));
    assert_eq!(c, kc, "conv1d channel mismatch: input {c}, kernel {kc}");
    (n, w, c, k, f)
}

fn im2col1d(input: &Tensor, k: usize, padding: Padding, ws: &mut Workspace) -> (Vec<f32>, usize) {
    let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
    let ow = padding.out_size(w, k);
    let (pl, _) = padding.pads(k);
    let cols = k * c;
    let mut m = ws.take_zeroed(n * ow * cols);
    let src = input.data();
    parallel::par_chunks_mut(&mut m, ow * cols, |ni, chunk| {
        let sample = &src[ni * w * c..(ni + 1) * w * c];
        for ox in 0..ow {
            let row = ox * cols;
            for kx in 0..k {
                let ix = ox as isize + kx as isize - pl as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                let dst = row + kx * c;
                let s = ix as usize * c;
                chunk[dst..dst + c].copy_from_slice(&sample[s..s + c]);
            }
        }
    });
    (m, ow)
}

fn col2im1d(
    dcol: &[f32],
    n: usize,
    w: usize,
    c: usize,
    k: usize,
    padding: Padding,
    ws: &mut Workspace,
) -> Tensor {
    let ow = padding.out_size(w, k);
    let (pl, _) = padding.pads(k);
    let cols = k * c;
    let mut out = ws.take_tensor_zeroed([n, w, c]);
    parallel::par_chunks_mut(out.data_mut(), w * c, |ni, dst| {
        let sample = &dcol[ni * ow * cols..(ni + 1) * ow * cols];
        for ox in 0..ow {
            let row = ox * cols;
            for kx in 0..k {
                let ix = ox as isize + kx as isize - pl as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                let s = row + kx * c;
                let d = ix as usize * c;
                for ci in 0..c {
                    dst[d + ci] += sample[s + ci];
                }
            }
        }
    });
    out
}

/// Forward 1-D convolution.
///
/// * `input` — `(n, w, c)`
/// * `kernel` — `(k, c, f)`
///
/// Returns `(n, ow, f)`.
pub fn conv1d_forward(input: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
    with_thread_workspace(|ws| conv1d_forward_ws(input, kernel, padding, ws))
}

/// [`conv1d_forward`] with caller-owned scratch (zero steady-state allocs).
pub fn conv1d_forward_ws(
    input: &Tensor,
    kernel: &Tensor,
    padding: Padding,
    ws: &mut Workspace,
) -> Tensor {
    let (n, _w, c, k, f) = check_conv1d(input, kernel);
    let (col, ow) = im2col1d(input, k, padding, ws);
    let rows = n * ow;
    let mut out = ws.take(rows * f);
    gemm_rowmajor(rows, f, k * c, &col, kernel.data(), &mut out, ws);
    ws.give(col);
    Tensor::from_vec([n, ow, f], out)
}

/// Backward 1-D convolution: `(d_input, d_kernel)` for upstream `dout (n, ow, f)`.
pub fn conv1d_backward(
    input: &Tensor,
    kernel: &Tensor,
    dout: &Tensor,
    padding: Padding,
) -> (Tensor, Tensor) {
    with_thread_workspace(|ws| conv1d_backward_ws(input, kernel, dout, padding, ws))
}

/// [`conv1d_backward`] with caller-owned scratch (zero steady-state allocs).
pub fn conv1d_backward_ws(
    input: &Tensor,
    kernel: &Tensor,
    dout: &Tensor,
    padding: Padding,
    ws: &mut Workspace,
) -> (Tensor, Tensor) {
    let (n, w, c, k, f) = check_conv1d(input, kernel);
    let (col, ow) = im2col1d(input, k, padding, ws);
    assert_eq!(dout.shape().dims(), &[n, ow, f], "conv1d_backward: bad dout {}", dout.shape());
    let rows = n * ow;
    let cols = k * c;
    let mut dk = ws.take(cols * f);
    gemm_at_rowmajor(rows, cols, f, &col, dout.data(), &mut dk, ws);
    let dkernel = Tensor::from_vec([k, c, f], dk);
    let mut dcol = ws.take(rows * cols);
    gemm_bt_rowmajor(rows, cols, f, dout.data(), kernel.data(), &mut dcol, ws);
    ws.give(col);
    let dinput = col2im1d(&dcol, n, w, c, k, padding, ws);
    ws.give(dcol);
    (dinput, dkernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive_conv1d(input: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
        let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
        let (k, _, f) = (kernel.shape().dim(0), kernel.shape().dim(1), kernel.shape().dim(2));
        let ow = padding.out_size(w, k);
        let (pl, _) = padding.pads(k);
        let mut out = Tensor::zeros([n, ow, f]);
        for ni in 0..n {
            for ox in 0..ow {
                for fi in 0..f {
                    let mut acc = 0.0;
                    for kx in 0..k {
                        let ix = ox as isize + kx as isize - pl as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        for ci in 0..c {
                            acc += input.at(&[ni, ix as usize, ci]) * kernel.at(&[kx, ci, fi]);
                        }
                    }
                    out.set(&[ni, ox, fi], acc);
                }
            }
        }
        out
    }

    #[test]
    fn shapes() {
        let input = Tensor::zeros([2, 16, 4]);
        let kernel = Tensor::zeros([5, 4, 8]);
        assert_eq!(conv1d_forward(&input, &kernel, Padding::Valid).shape().dims(), &[2, 12, 8]);
        assert_eq!(conv1d_forward(&input, &kernel, Padding::Same).shape().dims(), &[2, 16, 8]);
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng::seed(10);
        for &padding in &[Padding::Valid, Padding::Same] {
            for &(w, c, k, f) in &[(9, 1, 3, 2), (12, 3, 4, 5), (7, 2, 1, 1)] {
                let input = Tensor::rand_normal([2, w, c], 0.0, 1.0, &mut rng);
                let kernel = Tensor::rand_normal([k, c, f], 0.0, 1.0, &mut rng);
                let fast = conv1d_forward(&input, &kernel, padding);
                let slow = naive_conv1d(&input, &kernel, padding);
                assert!(fast.approx_eq(&slow, 1e-4), "{padding:?} ({w},{c},{k},{f})");
            }
        }
    }

    #[test]
    fn forward_matches_naive_on_wide_nt3_like_input() {
        // Wide enough that the blocked GEMM path carries the product.
        let mut rng = Rng::seed(12);
        let input = Tensor::rand_normal([2, 180, 4], 0.0, 1.0, &mut rng);
        let kernel = Tensor::rand_normal([5, 4, 20], 0.0, 0.3, &mut rng);
        let fast = conv1d_forward(&input, &kernel, Padding::Same);
        let slow = naive_conv1d(&input, &kernel, Padding::Same);
        assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn ws_variant_matches_and_reuses() {
        let mut rng = Rng::seed(13);
        let mut ws = Workspace::new();
        let input = Tensor::rand_normal([3, 14, 2], 0.0, 1.0, &mut rng);
        let kernel = Tensor::rand_normal([3, 2, 5], 0.0, 1.0, &mut rng);
        let base = conv1d_forward(&input, &kernel, Padding::Same);
        for _ in 0..3 {
            let out = conv1d_forward_ws(&input, &kernel, Padding::Same, &mut ws);
            assert!(out.approx_eq(&base, 1e-6));
            ws.recycle(out);
        }
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = Rng::seed(11);
        for &padding in &[Padding::Valid, Padding::Same] {
            let input = Tensor::rand_normal([1, 8, 2], 0.0, 1.0, &mut rng);
            let kernel = Tensor::rand_normal([3, 2, 3], 0.0, 0.5, &mut rng);
            let out = conv1d_forward(&input, &kernel, padding);
            let dout = Tensor::ones(out.shape().dims().to_vec());
            let (dinput, dkernel) = conv1d_backward(&input, &kernel, &dout, padding);
            let eps = 1e-2f32;
            for idx in (0..input.numel()).step_by(3) {
                let mut plus = input.clone();
                plus.data_mut()[idx] += eps;
                let mut minus = input.clone();
                minus.data_mut()[idx] -= eps;
                let num = (conv1d_forward(&plus, &kernel, padding).sum()
                    - conv1d_forward(&minus, &kernel, padding).sum())
                    / (2.0 * eps);
                assert!((num - dinput.data()[idx]).abs() < 1e-2, "{padding:?} dinput[{idx}]");
            }
            for kidx in 0..kernel.numel() {
                let mut plus = kernel.clone();
                plus.data_mut()[kidx] += eps;
                let mut minus = kernel.clone();
                minus.data_mut()[kidx] -= eps;
                let num = (conv1d_forward(&input, &plus, padding).sum()
                    - conv1d_forward(&input, &minus, padding).sum())
                    / (2.0 * eps);
                assert!((num - dkernel.data()[kidx]).abs() < 1e-2, "{padding:?} dkernel[{kidx}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank 3")]
    fn wrong_rank_panics() {
        conv1d_forward(&Tensor::zeros([2, 4]), &Tensor::zeros([3, 1, 1]), Padding::Valid);
    }
}
