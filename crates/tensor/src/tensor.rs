//! The dense row-major `f32` tensor.

use crate::rng::Rng;
use crate::shape::Shape;

/// A dense, row-major, owned `f32` tensor.
///
/// All model parameters, activations and gradients in this repository are
/// `Tensor`s; the weight-transfer contribution (`swt-core`) copies `data`
/// between tensors whose [`Shape`]s match exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build from a shape and matching element buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not fill shape {}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// All-zero tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-one tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// I.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// I.i.d. normal samples with the given mean and standard deviation.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.normal() * std + mean).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only element buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable element buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Set element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Reinterpret with a new shape of identical element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.data.len(), "reshape to {} changes numel", shape);
        Tensor { shape, data: self.data }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise combine with another tensor of identical shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place `self += alpha * other` (the BLAS axpy), the workhorse of the
    /// optimizer and of gradient accumulation.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale by a constant.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 if empty).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0.0 if empty). Useful for gradient checks.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// For a rank-2 tensor `(rows, cols)`: per-column sums, shape `(cols,)`.
    /// This is the bias-gradient reduction.
    ///
    /// # Panics
    /// Panics unless rank is 2.
    pub fn col_sums(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "col_sums requires rank 2");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        Tensor::from_vec([cols], out)
    }

    /// For a rank-2 tensor: the argmax of each row. Used by the accuracy
    /// metric (predicted class = argmax of logits).
    ///
    /// # Panics
    /// Panics unless rank is 2 with at least one column.
    pub fn row_argmax(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "row_argmax requires rank 2");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        assert!(cols > 0);
        (0..rows)
            .map(|r| {
                let row = &self.data[r * cols..(r + 1) * cols];
                let mut best = 0;
                for (i, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Copy rows `rows` of a rank-2 tensor into a new rank-2 tensor (batch
    /// gather).
    ///
    /// # Panics
    /// Panics unless rank is 2 or any row is out of range.
    pub fn gather_rows(&self, rows: &[usize]) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "gather_rows requires rank 2");
        let cols = self.shape.dim(1);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for &r in rows {
            assert!(r < self.shape.dim(0), "row {r} out of range");
            data.extend_from_slice(&self.data[r * cols..(r + 1) * cols]);
        }
        Tensor::from_vec([rows.len(), cols], data)
    }

    /// Copy the given outermost slices of a tensor of any rank ≥ 1 into a new
    /// tensor (batch gather along axis 0).
    ///
    /// # Panics
    /// Panics on rank 0 or an out-of-range index.
    pub fn gather0(&self, indices: &[usize]) -> Tensor {
        assert!(self.shape.rank() >= 1, "gather0 requires rank >= 1");
        let n = self.shape.dim(0);
        let stride = self.shape.numel() / n.max(1);
        let mut data = Vec::with_capacity(indices.len() * stride);
        for &i in indices {
            assert!(i < n, "index {i} out of range (axis-0 size {n})");
            data.extend_from_slice(&self.data[i * stride..(i + 1) * stride]);
        }
        let mut dims = self.shape.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(dims, data)
    }

    /// True iff every element differs by at most `tol` from `other`'s.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// Transpose a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless rank is 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires rank 2");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec([cols, rows], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum(), 7.5);
        let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not fill")]
    fn from_vec_checks_len() {
        Tensor::from_vec([2, 2], vec![1.0]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut t = Tensor::zeros([2, 3, 4]);
        t.set(&[1, 2, 3], 9.0);
        assert_eq!(t.at(&[1, 2, 3]), 9.0);
        assert_eq!(t.data()[t.shape().offset(&[1, 2, 3])], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0, 18.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0, 36.0]);
    }

    #[test]
    fn col_sums_matches_manual() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        assert_eq!(t.col_sums().data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn row_argmax_breaks_ties_towards_first() {
        let t = Tensor::from_vec([2, 3], vec![0.5, 0.5, 0.1, 0.0, 1.0, 1.0]);
        assert_eq!(t.row_argmax(), vec![0, 1]);
    }

    #[test]
    fn gather_rows_selects() {
        let t = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn gather0_works_on_higher_ranks() {
        let t = Tensor::from_vec([3, 2, 2], (0..12).map(|x| x as f32).collect());
        let g = t.gather0(&[2, 2, 0]);
        assert_eq!(g.shape().dims(), &[3, 2, 2]);
        assert_eq!(&g.data()[0..4], &[8., 9., 10., 11.]);
        assert_eq!(&g.data()[8..12], &[0., 1., 2., 3.]);
    }

    #[test]
    fn transpose2_round_trip() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        assert!(t.transpose2().transpose2().approx_eq(&t, 0.0));
        assert_eq!(t.transpose2().at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn rand_tensors_are_seed_deterministic() {
        let mut r1 = Rng::seed(4);
        let mut r2 = Rng::seed(4);
        let a = Tensor::rand_normal([4, 4], 0.0, 1.0, &mut r1);
        let b = Tensor::rand_normal([4, 4], 0.0, 1.0, &mut r2);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec([2], vec![1.0, -2.0]);
        let b = Tensor::from_vec([2], vec![3.0, 4.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0]);
        assert_eq!(a.zip_map(&b, |x, y| x * y).data(), &[3.0, -8.0]);
    }
}
