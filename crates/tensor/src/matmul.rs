//! Cache-blocked, register-tiled dense matrix multiplication.
//!
//! Dense layers and the im2col convolution lowering reduce everything to
//! GEMM, so this is the hottest kernel in the repository. The implementation
//! follows the classic BLIS/GotoBLAS decomposition:
//!
//! * the K dimension is split into `KC`-deep panels; for each panel, `B` is
//!   packed once into contiguous `NR`-wide strips and **reused across all row
//!   blocks** of that panel;
//! * the M dimension is split into `MC`-row blocks; each block of `A` is
//!   packed into `MR`-tall strips laid out `[k][MR]` so the micro-kernel
//!   streams both operands linearly;
//! * an `MR×NR` register micro-kernel with fixed trip counts accumulates into
//!   a column-major `[[f32; MR]; NR]` tile;
//! * parallel dispatch (see [`crate::parallel`]) is over `MC`-row *blocks*
//!   of `C`, not single rows, so each task amortises its packing work; each
//!   task packs into a per-thread scratch slice carved from the caller's
//!   [`Workspace`], so the parallel path allocates nothing at steady state.
//!
//! # Micro-kernel dispatch
//!
//! The micro-kernel is selected **once per process** at first use, by
//! runtime CPU feature detection (`is_x86_feature_detected!`), so one
//! portable binary runs everywhere and still saturates wide vector units
//! where they exist:
//!
//! * `Avx2Fma` — an explicit `std::arch::x86_64` kernel: per k step, two
//!   8-lane loads of the packed `A` strip and eight broadcast
//!   `_mm256_fmadd_ps` chains into the register tile
//!   (`micro_kernel_avx2`).
//! * `ScalarFma` — the generic tile loop compiled with the `fma` feature
//!   enabled for that one function, so `mul_add` lowers to hardware FMA.
//! * `Scalar` — the fully portable generic tile loop; the baseline for any
//!   target and the kernel behind [`force_scalar_kernel`].
//!
//! **FP-contract determinism:** all three kernels contract each output
//! element in the *same pinned order* — `k` ascending within a panel, one
//! multiply-add per step, panel sums combined in panel order — and never
//! reassociate. Kernels that fuse (`Avx2Fma`, `ScalarFma`, and `Scalar` when
//! the build itself enables FMA) are therefore **bit-identical** to each
//! other; the unfused portable `Scalar` kernel rounds each multiply and add
//! separately and may differ from the fused kernels in the last ulp. Within
//! one process the selection is pinned, so every run is bit-reproducible;
//! A/B flags ([`force_scalar_kernel`], `SWT_FORCE_SCALAR_KERNEL=1`) change
//! the kernel and may change low-order bits — they are benchmark/CI tools,
//! not run-time tuning knobs.
//!
//! Edges are zero-padded inside the packed buffers, so the micro-kernels are
//! branch-free (padding lanes compute `fma(0, b, acc) = acc` and are masked
//! off at write-back). The first K panel overwrites `C` and later panels
//! accumulate, so `C` needs no pre-zeroing.
//!
//! One stride-generic driver serves all three entry points — [`matmul`]
//! (`A·B`), [`matmul_at`] (`Aᵀ·B`, the weight gradient) and [`matmul_bt`]
//! (`A·Bᵀ`, the input gradient) — transposition is just a different pair of
//! packing strides, never a materialised transpose. [`matmul_naive`] keeps
//! the textbook triple loop as the correctness reference.

use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace::{with_thread_workspace, Workspace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Benchmark-only escape hatch: when set, every GEMM entry point (including
/// the conv lowering) runs the textbook triple loop instead of the blocked
/// kernel. This exists so `bench_gemm` can measure an honest end-to-end
/// before/after on the same build; it is not meant for production use.
static FORCE_NAIVE: AtomicBool = AtomicBool::new(false);

/// Benchmark/CI escape hatch: when set, the blocked driver runs the portable
/// scalar micro-kernel even where the SIMD kernel is available, mirroring
/// [`force_naive_gemm`]. `scripts/check.sh` also runs the whole test suite
/// with `SWT_FORCE_SCALAR_KERNEL=1` so the fallback kernel stays exercised
/// on SIMD-capable CI hosts.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Route all GEMMs through the naive reference kernel (`on = true`) or the
/// blocked kernel (`on = false`, the default).
pub fn force_naive_gemm(on: bool) {
    FORCE_NAIVE.store(on, Ordering::Relaxed);
}

/// Route the blocked driver through the portable scalar micro-kernel
/// (`on = true`) instead of the runtime-detected SIMD kernel. A/B tool for
/// benchmarks and CI; note the scalar kernel may differ from the fused SIMD
/// kernels in low-order bits (see the module docs).
pub fn force_scalar_kernel(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Which micro-kernel the dispatch table selected (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelKind {
    /// Portable generic tile loop (fused only if the build enables FMA).
    Scalar,
    /// Generic tile loop compiled with hardware FMA for this one function.
    #[cfg(target_arch = "x86_64")]
    ScalarFma,
    /// Explicit AVX2+FMA `std::arch` kernel.
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
}

/// The process-wide kernel selection, made once at first GEMM.
static KERNEL: OnceLock<KernelKind> = OnceLock::new();

fn detect_kernel() -> KernelKind {
    #[cfg(target_arch = "x86_64")]
    {
        // The env override exists so CI can run the *entire* suite on the
        // portable kernel without touching process state in every test.
        if std::env::var_os("SWT_FORCE_SCALAR_KERNEL").is_none() {
            if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
                return KernelKind::Avx2Fma;
            }
            if std::is_x86_feature_detected!("fma") {
                return KernelKind::ScalarFma;
            }
        }
    }
    KernelKind::Scalar
}

fn active_kernel() -> KernelKind {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return KernelKind::Scalar;
    }
    *KERNEL.get_or_init(detect_kernel)
}

/// Human-readable name of the micro-kernel the dispatch table would run
/// right now (`"avx2+fma"`, `"scalar+fma"` or `"scalar"`); benchmarks and
/// run reports record it so numbers are attributable to a kernel.
pub fn gemm_kernel_name() -> &'static str {
    match active_kernel() {
        KernelKind::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        KernelKind::ScalarFma => "scalar+fma",
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => "avx2+fma",
    }
}

/// Micro-kernel tile height (rows of `C` per register tile). Rows are the
/// vectorised dimension: packed `A` strips are `MR`-contiguous, so one tile
/// row-vector is two 8-lane loads.
pub const MR: usize = 16;
/// Micro-kernel tile width (columns of `C` per register tile); each column
/// holds an independent FMA chain, hiding FMA latency.
pub const NR: usize = 8;
/// K-panel depth: one packed `B` panel is `KC×N`.
pub const KC: usize = 256;
/// Row-block height: one packed `A` block is `MC×KC` (~64 KiB, L2-resident).
pub const MC: usize = 64;

/// Below this many multiply-adds (`m·n·k`) the packing overhead dominates and
/// a direct loop wins; candidate models here produce many tiny GEMMs.
const SMALL_FLOPS: usize = 32 * 1024;

/// Minimum output elements before parallel dispatch is worth its overhead.
const PAR_THRESHOLD: usize = 64 * 1024;

/// A strided read-only view of a logical `rows×cols` matrix.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl View<'_> {
    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    // `mul_add` is only profitable when the target actually has FMA;
    // otherwise it calls into libm and is drastically slower.
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C = A (M×K) · B (K×N)`.
///
/// # Panics
/// Panics if the inner dimensions disagree or inputs are not rank 2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    with_thread_workspace(|ws| matmul_ws(a, b, ws))
}

/// [`matmul`] with caller-owned scratch: pack buffers and the output tensor
/// come from `ws`, so steady-state callers allocate nothing.
pub fn matmul_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = ws.take(m * n);
    gemm(
        m,
        n,
        k,
        View { data: a.data(), rs: k, cs: 1 },
        View { data: b.data(), rs: n, cs: 1 },
        &mut out,
        ws,
    );
    Tensor::from_vec([m, n], out)
}

/// `C = Aᵀ · B` for `A (K×M)` and `B (K×N)`, result `(M, N)`:
/// `C[m][n] = Σ_k A[k][m] · B[k][n]`.
///
/// This is the dense-layer weight gradient `dW = Xᵀ · dY` without
/// materialising the transpose.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    with_thread_workspace(|ws| matmul_at_ws(a, b, ws))
}

/// [`matmul_at`] with caller-owned scratch.
pub fn matmul_at_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Tensor {
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "matmul_at inner dimension mismatch: {k} vs {k2}");
    let mut out = ws.take(m * n);
    gemm(
        m,
        n,
        k,
        // Logical Aᵀ (M×K): element (i, k) lives at A[k][i].
        View { data: a.data(), rs: 1, cs: m },
        View { data: b.data(), rs: n, cs: 1 },
        &mut out,
        ws,
    );
    Tensor::from_vec([m, n], out)
}

/// `C = A · Bᵀ` for `A (M×K)` and `B (N×K)`, result `(M, N)`:
/// `C[m][n] = Σ_k A[m][k] · B[n][k]`.
///
/// This is the dense-layer input gradient `dX = dY · Wᵀ` without
/// materialising the transpose.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    with_thread_workspace(|ws| matmul_bt_ws(a, b, ws))
}

/// [`matmul_bt`] with caller-owned scratch.
pub fn matmul_bt_ws(a: &Tensor, b: &Tensor, ws: &mut Workspace) -> Tensor {
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "matmul_bt inner dimension mismatch: {k} vs {k2}");
    let mut out = ws.take(m * n);
    gemm(
        m,
        n,
        k,
        View { data: a.data(), rs: k, cs: 1 },
        // Logical Bᵀ (K×N): element (k, j) lives at B[j][k].
        View { data: b.data(), rs: 1, cs: k },
        &mut out,
        ws,
    );
    Tensor::from_vec([m, n], out)
}

/// Textbook triple-loop reference (`C = A·B`). Kept public as the
/// correctness oracle for tests and the baseline for `BENCH_gemm.json`.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n]; // alloc-gate: allow (cold oracle, not a hot path)
    for i in 0..m {
        for kk in 0..k {
            let aik = ad[i * k + kk];
            for j in 0..n {
                out[i * n + j] += aik * bd[kk * n + j];
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `out (m×n) = a (m×k) · b (k×n)`, all row-major slices. Conv's im2col
/// lowering calls this directly so reshapes stay logical (no tensor clones).
pub(crate) fn gemm_rowmajor(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    ws: &mut Workspace,
) {
    gemm(m, n, k, View { data: a, rs: k, cs: 1 }, View { data: b, rs: n, cs: 1 }, out, ws);
}

/// `out (m×n) = aᵀ · b` for `a (kdim×m)` and `b (kdim×n)`, row-major slices.
pub(crate) fn gemm_at_rowmajor(
    kdim: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    ws: &mut Workspace,
) {
    gemm(m, n, kdim, View { data: a, rs: 1, cs: m }, View { data: b, rs: n, cs: 1 }, out, ws);
}

/// `out (m×n) = a · bᵀ` for `a (m×k)` and `b (n×k)`, row-major slices.
pub(crate) fn gemm_bt_rowmajor(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    ws: &mut Workspace,
) {
    gemm(m, n, k, View { data: a, rs: k, cs: 1 }, View { data: b, rs: 1, cs: k }, out, ws);
}

/// Blocked driver: `C (m×n, row-major, fully overwritten) = A · B` for
/// strided views `a` and `b`, on the process's selected micro-kernel.
fn gemm(m: usize, n: usize, k: usize, a: View, b: View, c: &mut [f32], ws: &mut Workspace) {
    gemm_with_kernel(active_kernel(), m, n, k, a, b, c, ws)
}

/// [`gemm`] pinned to a specific micro-kernel (tests compare kernels
/// pairwise through this).
#[allow(clippy::too_many_arguments)]
fn gemm_with_kernel(
    kernel: KernelKind,
    m: usize,
    n: usize,
    k: usize,
    a: View,
    b: View,
    c: &mut [f32],
    ws: &mut Workspace,
) {
    debug_assert_eq!(c.len(), m * n);
    if FORCE_NAIVE.load(Ordering::Relaxed) {
        swt_obs::counter!("tensor.gemm.naive").inc();
        return gemm_naive_view(m, n, k, a, b, c);
    }
    if m * n * k <= SMALL_FLOPS {
        swt_obs::counter!("tensor.gemm.small").inc();
        return gemm_small(m, n, k, a, b, c);
    }
    match kernel {
        KernelKind::Scalar => swt_obs::counter!("tensor.gemm.blocked.scalar").inc(),
        #[cfg(target_arch = "x86_64")]
        _ => swt_obs::counter!("tensor.gemm.blocked.simd").inc(),
    }

    let n_strips = n.div_ceil(NR);
    let kc_max = KC.min(k);
    // One packed-A task slice per worker thread (the parallel path hands
    // them out per task), or a single slice for the serial path. Sized for
    // the deepest panel so every panel's packing fits without reallocating.
    let pa_task_len = MC.min(m).div_ceil(MR) * MR * kc_max;
    let row_blocks = m.div_ceil(MC);
    let go_parallel = parallel::max_threads() > 1 && row_blocks > 1 && m * n >= PAR_THRESHOLD;
    let pack_tasks = if go_parallel { parallel::max_threads().min(row_blocks) } else { 1 };
    let mut pb = ws.take(kc_max * n_strips * NR);
    let mut pa = ws.take(pack_tasks * pa_task_len);

    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_b(b, k0, kc, n, &mut pb);
        let first = k0 == 0;
        if go_parallel {
            // Row blocks are disjoint `MC×n` chunks of C; each task packs
            // its own A block into its thread's scratch slice, carved from
            // the caller's Workspace — the hot loop never allocates.
            let pb_ref = &pb[..];
            parallel::par_chunks_mut_scratch(
                c,
                MC * n,
                &mut pa,
                pa_task_len,
                |ib, c_chunk, pa_scratch| {
                    let m0 = ib * MC;
                    let mc = MC.min(m - m0);
                    let pa_len = mc.div_ceil(MR) * MR * kc;
                    let pa_scratch = &mut pa_scratch[..pa_len];
                    pack_a(a, m0, mc, k0, kc, pa_scratch);
                    block_kernel(kernel, c_chunk, n, mc, kc, pa_scratch, pb_ref, first);
                },
            );
        } else {
            for ib in 0..row_blocks {
                let m0 = ib * MC;
                let mc = MC.min(m - m0);
                let pa_len = mc.div_ceil(MR) * MR * kc;
                pack_a(a, m0, mc, k0, kc, &mut pa[..pa_len]);
                block_kernel(
                    kernel,
                    &mut c[m0 * n..(m0 + mc) * n],
                    n,
                    mc,
                    kc,
                    &pa[..pa_len],
                    &pb,
                    first,
                );
            }
        }
        k0 += kc;
    }
    ws.give(pa);
    ws.give(pb);
}

/// Naive triple loop over strided views, used when [`force_naive_gemm`] is
/// active. Mirrors [`matmul_naive`]'s loop order (no FMA, no blocking) so the
/// benchmark baseline reflects the pre-optimisation kernel.
fn gemm_naive_view(m: usize, n: usize, k: usize, a: View, b: View, c: &mut [f32]) {
    c.fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let aik = a.at(i, kk);
            let crow = &mut c[i * n..(i + 1) * n];
            for (j, o) in crow.iter_mut().enumerate() {
                *o += aik * b.at(kk, j);
            }
        }
    }
}

/// Direct loop for tiny problems (also covers `k == 0`, where `C` is zero).
fn gemm_small(m: usize, n: usize, k: usize, a: View, b: View, c: &mut [f32]) {
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        crow.fill(0.0);
        for kk in 0..k {
            let aik = a.at(i, kk);
            for (j, o) in crow.iter_mut().enumerate() {
                *o = fmadd(aik, b.at(kk, j), *o);
            }
        }
    }
}

/// Pack rows `[m0, m0+mc)` × k-range `[k0, k0+kc)` of `a` into `MR`-tall
/// strips, each laid out `[kc][MR]`, zero-padding the ragged last strip.
fn pack_a(a: View, m0: usize, mc: usize, k0: usize, kc: usize, dst: &mut [f32]) {
    let mut off = 0;
    let mut i = 0;
    while i < mc {
        let rows = MR.min(mc - i);
        for kk in 0..kc {
            for r in 0..MR {
                dst[off] = if r < rows { a.at(m0 + i + r, k0 + kk) } else { 0.0 };
                off += 1;
            }
        }
        i += MR;
    }
}

/// Pack k-range `[k0, k0+kc)` × all `n` columns of `b` into `NR`-wide
/// strips, each laid out `[kc][NR]`, zero-padding the ragged last strip.
fn pack_b(b: View, k0: usize, kc: usize, n: usize, dst: &mut [f32]) {
    let mut off = 0;
    let mut j = 0;
    while j < n {
        let cols = NR.min(n - j);
        for kk in 0..kc {
            for q in 0..NR {
                dst[off] = if q < cols { b.at(k0 + kk, j + q) } else { 0.0 };
                off += 1;
            }
        }
        j += NR;
    }
}

/// Multiply one packed `mc×kc` A block by the packed `kc×n` B panel into the
/// `mc×n` C block (`c` is row-major with row stride `n`), on `kernel`.
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    kernel: KernelKind,
    c: &mut [f32],
    n: usize,
    mc: usize,
    kc: usize,
    pa: &[f32],
    pb: &[f32],
    first: bool,
) {
    let n_strips = n.div_ceil(NR);
    for (is, i) in (0..mc).step_by(MR).enumerate() {
        let rows = MR.min(mc - i);
        let pa_strip = &pa[is * MR * kc..(is + 1) * MR * kc];
        for js in 0..n_strips {
            let j = js * NR;
            let cols = NR.min(n - j);
            let pb_strip = &pb[js * NR * kc..(js + 1) * NR * kc];
            // Column-major tile: acc[q][r] is C[i+r][j+q]. The vectorised
            // row dimension is then contiguous per column, so the tile stays
            // in registers instead of decaying to gather/scatter.
            let mut acc = [[0.0f32; MR]; NR];
            match kernel {
                KernelKind::Scalar => micro_kernel(kc, pa_strip, pb_strip, &mut acc),
                #[cfg(target_arch = "x86_64")]
                // Safety: the dispatch table only selects these after
                // `is_x86_feature_detected!` confirmed the features (tests
                // gate the same way).
                KernelKind::ScalarFma => unsafe {
                    micro_kernel_scalar_fma(kc, pa_strip, pb_strip, &mut acc)
                },
                #[cfg(target_arch = "x86_64")]
                KernelKind::Avx2Fma => unsafe {
                    micro_kernel_avx2(kc, pa_strip, pb_strip, &mut acc)
                },
            }
            for r in 0..rows {
                let crow = &mut c[(i + r) * n + j..(i + r) * n + j + cols];
                if first {
                    for (q, o) in crow.iter_mut().enumerate() {
                        *o = acc[q][r];
                    }
                } else {
                    for (q, o) in crow.iter_mut().enumerate() {
                        *o += acc[q][r];
                    }
                }
            }
        }
    }
}

/// One tile column: `acc[r] (+)= a[r] * b` for all `MR` rows — a contiguous
/// fixed-trip loop, i.e. exactly one (or two) wide broadcast-FMAs. `FUSED`
/// pins the per-step rounding: fused multiply-add (one rounding, matching
/// the AVX2 kernel bit for bit) or separate multiply and add.
#[inline(always)]
fn fma_col<const FUSED: bool>(acc: &mut [f32; MR], a: &[f32; MR], b: f32) {
    for (o, &ai) in acc.iter_mut().zip(a) {
        *o = if FUSED { ai.mul_add(b, *o) } else { ai * b + *o };
    }
}

/// The generic `MR×NR` register tile: per k step, one contiguous `MR`-wide
/// load of the packed `A` strip and `NR` broadcast-FMAs into the
/// column-major tile.
///
/// The columns are unrolled *in source*: with a `for j` loop here LLVM's
/// loop vectorizer picks the column dimension (stride `MR`) and lowers the
/// tile to gather/scatter; with named columns only the contiguous row loops
/// remain, which vectorise to register-resident FMAs when the build has
/// vector units to offer.
#[inline(always)]
fn micro_kernel_generic<const FUSED: bool>(
    kc: usize,
    pa: &[f32],
    pb: &[f32],
    acc: &mut [[f32; MR]; NR],
) {
    let [c0, c1, c2, c3, c4, c5, c6, c7] = acc;
    for kk in 0..kc {
        let a: &[f32; MR] = pa[kk * MR..kk * MR + MR].try_into().unwrap();
        let b: &[f32; NR] = pb[kk * NR..kk * NR + NR].try_into().unwrap();
        fma_col::<FUSED>(c0, a, b[0]);
        fma_col::<FUSED>(c1, a, b[1]);
        fma_col::<FUSED>(c2, a, b[2]);
        fma_col::<FUSED>(c3, a, b[3]);
        fma_col::<FUSED>(c4, a, b[4]);
        fma_col::<FUSED>(c5, a, b[5]);
        fma_col::<FUSED>(c6, a, b[6]);
        fma_col::<FUSED>(c7, a, b[7]);
    }
}

/// The portable scalar micro-kernel: fused only when the whole build targets
/// FMA hardware (`-C target-cpu=…`), separate mul+add otherwise — `mul_add`
/// without hardware FMA would fall back to a libm call per element.
#[inline(always)]
fn micro_kernel(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; MR]; NR]) {
    micro_kernel_generic::<{ cfg!(target_feature = "fma") }>(kc, pa, pb, acc)
}

/// The generic tile loop compiled with the `fma` target feature enabled for
/// this one function, so `mul_add` lowers to hardware FMA (and the fixed-trip
/// row loops autovectorise against it). Bit-identical to [`micro_kernel_avx2`]
/// by the pinned contraction order.
///
/// # Safety
/// Caller must have verified `is_x86_feature_detected!("fma")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn micro_kernel_scalar_fma(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; MR]; NR]) {
    micro_kernel_generic::<true>(kc, pa, pb, acc)
}

/// The explicit AVX2+FMA micro-kernel: per k step, the `MR = 16` packed `A`
/// lanes are two 8-lane vectors, and each of the `NR = 8` packed `B` values
/// is broadcast and fused-multiply-added into its column's pair of
/// accumulators.
///
/// The tile is processed in **two passes of four columns** (`j0 = 0, 4`):
/// a full 16×8 tile needs 16 ymm accumulators, which together with the two
/// `A` vectors and the broadcast register exceeds the 16 architectural ymm
/// registers and spills every iteration; 8 accumulators + 2 loads + 1
/// broadcast fit with room to spare. The second pass re-streams the packed
/// `A` strip from L1 (≤ 16 KiB), which is far cheaper than per-iteration
/// spills.
///
/// Partial tiles need no masking here: packing zero-pads ragged edges, the
/// padded lanes compute `fma(0, b, acc) = acc`, and write-back
/// ([`block_kernel`]) slices the padding off.
///
/// # Safety
/// Caller must have verified `is_x86_feature_detected!("avx2")` and
/// `("fma")`. `pa` must hold at least `kc·MR` and `pb` at least `kc·NR`
/// elements (debug-asserted).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_kernel_avx2(kc: usize, pa: &[f32], pb: &[f32], acc: &mut [[f32; MR]; NR]) {
    use std::arch::x86_64::*;
    debug_assert!(pa.len() >= kc * MR);
    debug_assert!(pb.len() >= kc * NR);
    let pa = pa.as_ptr();
    let pb = pb.as_ptr();
    for half in 0..2 {
        let j0 = half * (NR / 2);
        let mut c0l = _mm256_setzero_ps();
        let mut c0h = _mm256_setzero_ps();
        let mut c1l = _mm256_setzero_ps();
        let mut c1h = _mm256_setzero_ps();
        let mut c2l = _mm256_setzero_ps();
        let mut c2h = _mm256_setzero_ps();
        let mut c3l = _mm256_setzero_ps();
        let mut c3h = _mm256_setzero_ps();
        for kk in 0..kc {
            let a_lo = _mm256_loadu_ps(pa.add(kk * MR));
            let a_hi = _mm256_loadu_ps(pa.add(kk * MR + 8));
            let bk = pb.add(kk * NR + j0);
            let b0 = _mm256_broadcast_ss(&*bk);
            c0l = _mm256_fmadd_ps(a_lo, b0, c0l);
            c0h = _mm256_fmadd_ps(a_hi, b0, c0h);
            let b1 = _mm256_broadcast_ss(&*bk.add(1));
            c1l = _mm256_fmadd_ps(a_lo, b1, c1l);
            c1h = _mm256_fmadd_ps(a_hi, b1, c1h);
            let b2 = _mm256_broadcast_ss(&*bk.add(2));
            c2l = _mm256_fmadd_ps(a_lo, b2, c2l);
            c2h = _mm256_fmadd_ps(a_hi, b2, c2h);
            let b3 = _mm256_broadcast_ss(&*bk.add(3));
            c3l = _mm256_fmadd_ps(a_lo, b3, c3l);
            c3h = _mm256_fmadd_ps(a_hi, b3, c3h);
        }
        _mm256_storeu_ps(acc[j0].as_mut_ptr(), c0l);
        _mm256_storeu_ps(acc[j0].as_mut_ptr().add(8), c0h);
        _mm256_storeu_ps(acc[j0 + 1].as_mut_ptr(), c1l);
        _mm256_storeu_ps(acc[j0 + 1].as_mut_ptr().add(8), c1h);
        _mm256_storeu_ps(acc[j0 + 2].as_mut_ptr(), c2l);
        _mm256_storeu_ps(acc[j0 + 2].as_mut_ptr().add(8), c2h);
        _mm256_storeu_ps(acc[j0 + 3].as_mut_ptr(), c3l);
        _mm256_storeu_ps(acc[j0 + 3].as_mut_ptr().add(8), c3h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        matmul_naive(a, b)
    }

    /// Run the full strided driver pinned to one kernel (bypassing the
    /// small-problem cutoff is deliberate: tests want the blocked path).
    fn blocked_with(kernel: KernelKind, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = dims2(a, "lhs");
        let (_, n) = dims2(b, "rhs");
        let mut ws = Workspace::new();
        let mut out = vec![0.0f32; m * n];
        gemm_with_kernel(
            kernel,
            m,
            n,
            k,
            View { data: a.data(), rs: k, cs: 1 },
            View { data: b.data(), rs: n, cs: 1 },
            &mut out,
            &mut ws,
        );
        Tensor::from_vec([m, n], out)
    }

    fn bitwise_eq(x: &Tensor, y: &Tensor) -> bool {
        x.shape() == y.shape()
            && x.data().iter().zip(y.data()).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed(1);
        let a = Tensor::rand_normal([5, 5], 0.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).approx_eq(&a, 1e-6));
        assert!(matmul(&eye, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = Rng::seed(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 1, 8), (17, 9, 13)] {
            let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
            assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4), "({m},{k},{n})");
        }
    }

    #[test]
    fn blocked_path_matches_naive_across_block_edges() {
        // Sizes straddling MR/NR/MC/KC boundaries, including multiple K
        // panels (k > KC) so the accumulate path is exercised.
        let mut rng = Rng::seed(3);
        for &(m, k, n) in &[
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MC - 1, 40, 200),
            (MC + 3, 2 * KC + 5, 33),
            (96, 300, 17),
            (1, 512, 64),
            (64, 512, 1),
        ] {
            let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
            assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-3), "({m},{k},{n})");
        }
    }

    /// Every `(m % MR, n % NR, k % KC)` residue class: the SIMD and
    /// scalar-FMA kernels must agree **bitwise** (same pinned contraction
    /// order, same fused rounding), the portable scalar kernel agrees within
    /// unfused-vs-fused rounding, and all three match the naive oracle.
    #[test]
    fn remainder_paths_all_kernels_agree() {
        let mut rng = Rng::seed(31);
        // Residues 0, 1 and max for each tile dimension, plus a multi-panel
        // k so the panel-accumulate path is covered in every kernel.
        let ms = [MR, MR + 1, 2 * MR - 1, 3];
        let ns = [NR, NR + 1, 2 * NR - 1, 5];
        let ks = [1, 2, KC - 1, KC, KC + 1, 2 * KC + 3];
        for &m in &ms {
            for &n in &ns {
                for &k in &ks {
                    let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
                    let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
                    let scalar = blocked_with(KernelKind::Scalar, &a, &b);
                    let reference = naive(&a, &b);
                    assert!(scalar.approx_eq(&reference, 1e-3), "scalar ({m},{n},{k})");
                    #[cfg(target_arch = "x86_64")]
                    if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
                    {
                        let simd = blocked_with(KernelKind::Avx2Fma, &a, &b);
                        let scalar_fma = blocked_with(KernelKind::ScalarFma, &a, &b);
                        assert!(
                            bitwise_eq(&simd, &scalar_fma),
                            "SIMD vs scalar-FMA bits diverged at ({m},{n},{k})"
                        );
                        assert!(simd.approx_eq(&reference, 1e-3), "simd ({m},{n},{k})");
                        // Unfused vs fused differ only in last-ulp rounding.
                        assert!(simd.approx_eq(&scalar, 1e-4), "simd vs scalar ({m},{n},{k})");
                        if cfg!(target_feature = "fma") {
                            // A build that already targets FMA makes the
                            // portable kernel fused too: all three bit-equal.
                            assert!(bitwise_eq(&simd, &scalar), "({m},{n},{k})");
                        }
                    }
                }
            }
        }
    }

    /// The public entry point under the real dispatch table vs the pinned
    /// scalar kernel: identical results up to FP contraction.
    #[test]
    fn forced_scalar_kernel_matches_dispatch() {
        let mut rng = Rng::seed(33);
        let a = Tensor::rand_normal([70, 90], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([90, 40], 0.0, 1.0, &mut rng);
        let auto = matmul(&a, &b);
        force_scalar_kernel(true);
        let forced = matmul(&a, &b);
        force_scalar_kernel(false);
        assert!(forced.approx_eq(&auto, 1e-4));
        assert!(!gemm_kernel_name().is_empty());
    }

    #[test]
    fn at_variant_equals_explicit_transpose() {
        let mut rng = Rng::seed(4);
        for &(k, m, n) in &[(7, 3, 5), (130, 70, 90)] {
            let a = Tensor::rand_normal([k, m], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
            let expect = matmul(&a.transpose2(), &b);
            assert!(matmul_at(&a, &b).approx_eq(&expect, 1e-3), "({k},{m},{n})");
        }
    }

    #[test]
    fn bt_variant_equals_explicit_transpose() {
        let mut rng = Rng::seed(5);
        for &(m, n, k) in &[(6, 9, 4), (80, 120, 66)] {
            let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal([n, k], 0.0, 1.0, &mut rng);
            let expect = matmul(&a, &b.transpose2());
            assert!(matmul_bt(&a, &b).approx_eq(&expect, 1e-3), "({m},{n},{k})");
        }
    }

    #[test]
    fn ws_variants_reuse_buffers() {
        let mut ws = Workspace::new();
        let mut rng = Rng::seed(6);
        let a = Tensor::rand_normal([48, 96], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([96, 32], 0.0, 1.0, &mut rng);
        let c1 = matmul_ws(&a, &b, &mut ws);
        let expect = naive(&a, &b);
        assert!(c1.approx_eq(&expect, 1e-4));
        ws.recycle(c1);
        let pooled_before = ws.pooled();
        let c2 = matmul_ws(&a, &b, &mut ws);
        assert!(c2.approx_eq(&expect, 1e-4));
        // The output buffer came back out of the pool.
        assert!(ws.pooled() < pooled_before + 1);
    }

    #[test]
    fn forced_naive_path_matches_blocked() {
        let mut rng = Rng::seed(7);
        let a = Tensor::rand_normal([33, 70], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([70, 21], 0.0, 1.0, &mut rng);
        let blocked = matmul(&a, &b);
        force_naive_gemm(true);
        let forced = matmul(&a, &b);
        force_naive_gemm(false);
        assert!(forced.approx_eq(&blocked, 1e-4));
    }

    /// The parallel row-block path (per-thread pack scratch) must produce
    /// exactly the serial result: same packing, same kernels, disjoint C.
    #[test]
    fn parallel_row_blocks_match_serial_bitwise() {
        let mut rng = Rng::seed(8);
        // Two full MC row blocks plus a ragged one; wide enough to clear
        // PAR_THRESHOLD with room (m*n = 2*MC*n ≥ 64k needs n ≥ 475).
        let (m, k, n) = (2 * MC + 7, KC + 9, 512);
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
        let prev = parallel::max_threads();
        parallel::set_max_threads(1);
        let serial = matmul(&a, &b);
        parallel::set_max_threads(3);
        let parallel_out = matmul(&a, &b);
        parallel::set_max_threads(if prev == 0 { 0 } else { prev });
        assert!(bitwise_eq(&serial, &parallel_out));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }
}
