//! Parallel dense matrix multiplication.
//!
//! Dense layers and the im2col convolution lowering reduce everything to
//! GEMM, so this is the hottest kernel in the repository. The implementation
//! follows the session's HPC guidance: rayon `par_chunks_mut` over output
//! rows (data-race free by construction), `k`-outer loops over slices so
//! bounds checks hoist, and an fma-friendly inner axpy.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this many output elements the parallel dispatch overhead dominates
/// and we run single-threaded. (Candidate models here are small; many GEMMs
/// are tiny.)
const PAR_THRESHOLD: usize = 16 * 1024;

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank 2, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C = A (M×K) · B (K×N)`.
///
/// # Panics
/// Panics if the inner dimensions disagree or inputs are not rank 2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();

    let row_kernel = |row_i: usize, out_row: &mut [f32]| {
        let a_row = &ad[row_i * k..(row_i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    };

    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| row_kernel(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, row);
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `C = Aᵀ · B` for `A (K×M)` and `B (K×N)`, result `(M, N)`:
/// `C[m][n] = Σ_k A[k][m] · B[k][n]`.
///
/// This is the dense-layer weight gradient `dW = Xᵀ · dY` without
/// materialising the transpose.
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at lhs");
    let (k2, n) = dims2(b, "matmul_at rhs");
    assert_eq!(k, k2, "matmul_at inner dimension mismatch: {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    // Accumulate rank-1 updates row-by-row of A/B; each k contributes
    // outer(A[k,:], B[k,:]). Parallelise over output rows instead to stay
    // race-free: C[m] = Σ_k A[k][m] * B[k].
    let row_kernel = |mi: usize, out_row: &mut [f32]| {
        for kk in 0..k {
            let amk = ad[kk * m + mi];
            if amk == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += amk * bv;
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| row_kernel(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, row);
        }
    }
    Tensor::from_vec([m, n], out)
}

/// `C = A · Bᵀ` for `A (M×K)` and `B (N×K)`, result `(M, N)`:
/// `C[m][n] = Σ_k A[m][k] · B[n][k]`.
///
/// This is the dense-layer input gradient `dX = dY · Wᵀ` without
/// materialising the transpose; the dot-product form is cache-friendly since
/// both operands stream row-major.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_bt lhs");
    let (n, k2) = dims2(b, "matmul_bt rhs");
    assert_eq!(k, k2, "matmul_bt inner dimension mismatch: {k} vs {k2}");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let row_kernel = |mi: usize, out_row: &mut [f32]| {
        let a_row = &ad[mi * k..(mi + 1) * k];
        for (ni, o) in out_row.iter_mut().enumerate() {
            let b_row = &bd[ni * k..(ni + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o = acc;
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| row_kernel(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, row);
        }
    }
    Tensor::from_vec([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed(1);
        let a = Tensor::rand_normal([5, 5], 0.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).approx_eq(&a, 1e-6));
        assert!(matmul(&eye, &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = Rng::seed(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (8, 1, 8), (17, 9, 13)] {
            let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut rng);
            assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4), "({m},{k},{n})");
        }
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        let mut rng = Rng::seed(3);
        let a = Tensor::rand_normal([96, 40], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([40, 200], 0.0, 1.0, &mut rng);
        // 96 * 200 = 19200 > threshold -> exercises the rayon path.
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-3));
    }

    #[test]
    fn at_variant_equals_explicit_transpose() {
        let mut rng = Rng::seed(4);
        let a = Tensor::rand_normal([7, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([7, 5], 0.0, 1.0, &mut rng);
        let expect = matmul(&a.transpose2(), &b);
        assert!(matmul_at(&a, &b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn bt_variant_equals_explicit_transpose() {
        let mut rng = Rng::seed(5);
        let a = Tensor::rand_normal([6, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([9, 4], 0.0, 1.0, &mut rng);
        let expect = matmul(&a, &b.transpose2());
        assert!(matmul_bt(&a, &b).approx_eq(&expect, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        matmul(&a, &b);
    }
}
