//! 2-D convolution (NHWC) via im2col lowering, forward and backward.
//!
//! The CIFAR-like and MNIST-like search spaces stack convolutional variable
//! nodes with `valid`/`same` padding choices (Section VII-A); this module
//! provides the kernel. Stride is fixed at 1 — exactly like the paper's
//! search spaces, where spatial reduction comes from the pooling variable
//! nodes, not from strided convolutions.
//!
//! `im2col`/`col2im` run parallel over the batch dimension (each sample's
//! rows are a disjoint slice), the GEMM is the blocked kernel from
//! [`crate::matmul()`], and the `_ws` variants draw every scratch buffer from a
//! caller-owned [`Workspace`] so steady-state training allocates nothing.

use crate::matmul::{gemm_at_rowmajor, gemm_bt_rowmajor, gemm_rowmajor};
use crate::parallel;
use crate::tensor::Tensor;
use crate::workspace::{with_thread_workspace, Workspace};

/// Convolution padding mode, mirroring the Keras/TensorFlow vocabulary used
/// by the paper's search spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// No padding; output shrinks by `k - 1`.
    Valid,
    /// Zero padding so the output has the input's spatial size (stride 1).
    /// Total padding `k - 1` split TensorFlow-style: `floor` before, `ceil`
    /// after.
    Same,
}

impl Padding {
    /// `(pad_before, pad_after)` for kernel size `k` at stride 1.
    pub fn pads(self, k: usize) -> (usize, usize) {
        match self {
            Padding::Valid => (0, 0),
            Padding::Same => {
                let total = k - 1;
                (total / 2, total - total / 2)
            }
        }
    }

    /// Output spatial size for input size `s` and kernel size `k`.
    pub fn out_size(self, s: usize, k: usize) -> usize {
        match self {
            Padding::Valid => {
                assert!(s >= k, "valid conv: input {s} smaller than kernel {k}");
                s - k + 1
            }
            Padding::Same => s,
        }
    }
}

fn check_conv2d(
    input: &Tensor,
    kernel: &Tensor,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    assert_eq!(input.shape().rank(), 4, "conv2d input must be NHWC rank 4");
    assert_eq!(kernel.shape().rank(), 4, "conv2d kernel must be (kh, kw, c, f)");
    let (n, h, w, c) =
        (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2), input.shape().dim(3));
    let (kh, kw, kc, f) = (
        kernel.shape().dim(0),
        kernel.shape().dim(1),
        kernel.shape().dim(2),
        kernel.shape().dim(3),
    );
    assert_eq!(c, kc, "conv2d channel mismatch: input {c}, kernel {kc}");
    (n, h, w, c, kh, kw, f)
}

/// Lower the input into the im2col matrix `(n·oh·ow, kh·kw·c)`, parallel
/// over the batch (one sample = one disjoint row range). Returns the matrix
/// buffer plus `(oh, ow)`.
fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    padding: Padding,
    ws: &mut Workspace,
) -> (Vec<f32>, usize, usize) {
    let (n, h, w, c) =
        (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2), input.shape().dim(3));
    let oh = padding.out_size(h, kh);
    let ow = padding.out_size(w, kw);
    let (pt, _) = padding.pads(kh);
    let (pl, _) = padding.pads(kw);
    let cols = kh * kw * c;
    // Zeroed: padding taps are simply never written.
    let mut m = ws.take_zeroed(n * oh * ow * cols);
    let src = input.data();
    parallel::par_chunks_mut(&mut m, oh * ow * cols, |ni, chunk| {
        let sample = &src[ni * h * w * c..(ni + 1) * h * w * c];
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * cols;
                for ky in 0..kh {
                    let iy = oy as isize + ky as isize - pt as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // zero padding: leave zeros
                    }
                    for kx in 0..kw {
                        let ix = ox as isize + kx as isize - pl as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let dst = row + (ky * kw + kx) * c;
                        let s = (iy as usize * w + ix as usize) * c;
                        chunk[dst..dst + c].copy_from_slice(&sample[s..s + c]);
                    }
                }
            }
        }
    });
    (m, oh, ow)
}

/// Scatter-add the im2col-shaped gradient back onto the input layout,
/// parallel over the batch.
#[allow(clippy::too_many_arguments)]
fn col2im(
    dcol: &[f32],
    n: usize,
    h: usize,
    w: usize,
    c: usize,
    kh: usize,
    kw: usize,
    padding: Padding,
    ws: &mut Workspace,
) -> Tensor {
    let oh = padding.out_size(h, kh);
    let ow = padding.out_size(w, kw);
    let (pt, _) = padding.pads(kh);
    let (pl, _) = padding.pads(kw);
    let cols = kh * kw * c;
    let mut out = ws.take_tensor_zeroed([n, h, w, c]);
    parallel::par_chunks_mut(out.data_mut(), h * w * c, |ni, dst| {
        let sample = &dcol[ni * oh * ow * cols..(ni + 1) * oh * ow * cols];
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (oy * ow + ox) * cols;
                for ky in 0..kh {
                    let iy = oy as isize + ky as isize - pt as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = ox as isize + kx as isize - pl as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let s = row + (ky * kw + kx) * c;
                        let d = (iy as usize * w + ix as usize) * c;
                        for ci in 0..c {
                            dst[d + ci] += sample[s + ci];
                        }
                    }
                }
            }
        }
    });
    out
}

/// Forward 2-D convolution.
///
/// * `input` — `(n, h, w, c)`
/// * `kernel` — `(kh, kw, c, f)`
///
/// Returns `(n, oh, ow, f)`.
pub fn conv2d_forward(input: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
    with_thread_workspace(|ws| conv2d_forward_ws(input, kernel, padding, ws))
}

/// [`conv2d_forward`] with caller-owned scratch (zero steady-state allocs).
pub fn conv2d_forward_ws(
    input: &Tensor,
    kernel: &Tensor,
    padding: Padding,
    ws: &mut Workspace,
) -> Tensor {
    let (n, _h, _w, c, kh, kw, f) = check_conv2d(input, kernel);
    let (col, oh, ow) = im2col(input, kh, kw, padding, ws);
    let rows = n * oh * ow;
    let mut out = ws.take(rows * f);
    gemm_rowmajor(rows, f, kh * kw * c, &col, kernel.data(), &mut out, ws);
    ws.give(col);
    Tensor::from_vec([n, oh, ow, f], out)
}

/// Backward 2-D convolution: given upstream gradient `dout (n, oh, ow, f)`,
/// returns `(d_input, d_kernel)`.
pub fn conv2d_backward(
    input: &Tensor,
    kernel: &Tensor,
    dout: &Tensor,
    padding: Padding,
) -> (Tensor, Tensor) {
    with_thread_workspace(|ws| conv2d_backward_ws(input, kernel, dout, padding, ws))
}

/// [`conv2d_backward`] with caller-owned scratch (zero steady-state allocs).
pub fn conv2d_backward_ws(
    input: &Tensor,
    kernel: &Tensor,
    dout: &Tensor,
    padding: Padding,
    ws: &mut Workspace,
) -> (Tensor, Tensor) {
    let (n, h, w, c, kh, kw, f) = check_conv2d(input, kernel);
    let (col, oh, ow) = im2col(input, kh, kw, padding, ws);
    assert_eq!(
        dout.shape().dims(),
        &[n, oh, ow, f],
        "conv2d_backward: dout shape {} unexpected",
        dout.shape()
    );
    let rows = n * oh * ow;
    let cols = kh * kw * c;
    // dW = colᵀ · dOut
    let mut dk = ws.take(cols * f);
    gemm_at_rowmajor(rows, cols, f, &col, dout.data(), &mut dk, ws);
    let dkernel = Tensor::from_vec([kh, kw, c, f], dk);
    // dCol = dOut · Wᵀ
    let mut dcol = ws.take(rows * cols);
    gemm_bt_rowmajor(rows, cols, f, dout.data(), kernel.data(), &mut dcol, ws);
    ws.give(col);
    let dinput = col2im(&dcol, n, h, w, c, kh, kw, padding, ws);
    ws.give(dcol);
    (dinput, dkernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Direct (quadruple-loop) reference convolution.
    fn naive_conv2d(input: &Tensor, kernel: &Tensor, padding: Padding) -> Tensor {
        let (n, h, w, c) = (
            input.shape().dim(0),
            input.shape().dim(1),
            input.shape().dim(2),
            input.shape().dim(3),
        );
        let (kh, kw, _, f) = (
            kernel.shape().dim(0),
            kernel.shape().dim(1),
            kernel.shape().dim(2),
            kernel.shape().dim(3),
        );
        let oh = padding.out_size(h, kh);
        let ow = padding.out_size(w, kw);
        let (pt, _) = padding.pads(kh);
        let (pl, _) = padding.pads(kw);
        let mut out = Tensor::zeros([n, oh, ow, f]);
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for fi in 0..f {
                        let mut acc = 0.0;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = oy as isize + ky as isize - pt as isize;
                                let ix = ox as isize + kx as isize - pl as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                for ci in 0..c {
                                    acc += input.at(&[ni, iy as usize, ix as usize, ci])
                                        * kernel.at(&[ky, kx, ci, fi]);
                                }
                            }
                        }
                        out.set(&[ni, oy, ox, fi], acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn valid_output_shape() {
        let input = Tensor::zeros([2, 8, 8, 3]);
        let kernel = Tensor::zeros([3, 3, 3, 16]);
        let out = conv2d_forward(&input, &kernel, Padding::Valid);
        assert_eq!(out.shape().dims(), &[2, 6, 6, 16]);
    }

    #[test]
    fn same_output_shape_even_kernel() {
        let input = Tensor::zeros([1, 7, 7, 2]);
        let kernel = Tensor::zeros([4, 2, 2, 5]);
        let out = conv2d_forward(&input, &kernel, Padding::Same);
        assert_eq!(out.shape().dims(), &[1, 7, 7, 5]);
    }

    #[test]
    fn forward_matches_naive() {
        let mut rng = Rng::seed(1);
        for &padding in &[Padding::Valid, Padding::Same] {
            for &(h, w, c, kh, kw, f) in
                &[(5, 5, 1, 3, 3, 2), (6, 4, 3, 2, 3, 4), (4, 4, 2, 1, 1, 3)]
            {
                let input = Tensor::rand_normal([2, h, w, c], 0.0, 1.0, &mut rng);
                let kernel = Tensor::rand_normal([kh, kw, c, f], 0.0, 1.0, &mut rng);
                let fast = conv2d_forward(&input, &kernel, padding);
                let slow = naive_conv2d(&input, &kernel, padding);
                assert!(
                    fast.approx_eq(&slow, 1e-4),
                    "padding {padding:?} ({h},{w},{c},{kh},{kw},{f})"
                );
            }
        }
    }

    #[test]
    fn forward_matches_naive_at_gemm_blocking_sizes() {
        // Big enough that the blocked GEMM path (not the small-size fallback)
        // carries the im2col product.
        let mut rng = Rng::seed(4);
        let input = Tensor::rand_normal([2, 12, 12, 8], 0.0, 1.0, &mut rng);
        let kernel = Tensor::rand_normal([3, 3, 8, 24], 0.0, 0.3, &mut rng);
        let fast = conv2d_forward(&input, &kernel, Padding::Same);
        let slow = naive_conv2d(&input, &kernel, Padding::Same);
        assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn ws_variant_matches_and_reuses() {
        let mut rng = Rng::seed(5);
        let mut ws = Workspace::new();
        let input = Tensor::rand_normal([2, 6, 6, 3], 0.0, 1.0, &mut rng);
        let kernel = Tensor::rand_normal([3, 3, 3, 4], 0.0, 1.0, &mut rng);
        let base = conv2d_forward(&input, &kernel, Padding::Same);
        for _ in 0..3 {
            let out = conv2d_forward_ws(&input, &kernel, Padding::Same, &mut ws);
            assert!(out.approx_eq(&base, 1e-6));
            ws.recycle(out);
        }
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel = identity over channels when kernel is the identity matrix.
        let mut rng = Rng::seed(2);
        let input = Tensor::rand_normal([1, 3, 3, 2], 0.0, 1.0, &mut rng);
        let mut kernel = Tensor::zeros([1, 1, 2, 2]);
        kernel.set(&[0, 0, 0, 0], 1.0);
        kernel.set(&[0, 0, 1, 1], 1.0);
        let out = conv2d_forward(&input, &kernel, Padding::Valid);
        assert!(out.approx_eq(&input, 1e-6));
    }

    /// Central-difference gradient check of both input and kernel gradients.
    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = Rng::seed(3);
        for &padding in &[Padding::Valid, Padding::Same] {
            let input = Tensor::rand_normal([1, 4, 4, 2], 0.0, 1.0, &mut rng);
            let kernel = Tensor::rand_normal([3, 3, 2, 2], 0.0, 0.5, &mut rng);
            // Loss = sum of conv output elements -> dout = ones.
            let out = conv2d_forward(&input, &kernel, padding);
            let dout = Tensor::ones(out.shape().dims().to_vec());
            let (dinput, dkernel) = conv2d_backward(&input, &kernel, &dout, padding);

            let eps = 1e-2f32;
            for probe in 0..6 {
                // Probe input gradient.
                let idx = probe * 3 % input.numel();
                let mut plus = input.clone();
                plus.data_mut()[idx] += eps;
                let mut minus = input.clone();
                minus.data_mut()[idx] -= eps;
                let num = (conv2d_forward(&plus, &kernel, padding).sum()
                    - conv2d_forward(&minus, &kernel, padding).sum())
                    / (2.0 * eps);
                assert!(
                    (num - dinput.data()[idx]).abs() < 1e-2,
                    "dinput[{idx}] analytic {} vs numeric {num} ({padding:?})",
                    dinput.data()[idx]
                );
                // Probe kernel gradient.
                let kidx = probe * 5 % kernel.numel();
                let mut kplus = kernel.clone();
                kplus.data_mut()[kidx] += eps;
                let mut kminus = kernel.clone();
                kminus.data_mut()[kidx] -= eps;
                let num = (conv2d_forward(&input, &kplus, padding).sum()
                    - conv2d_forward(&input, &kminus, padding).sum())
                    / (2.0 * eps);
                assert!(
                    (num - dkernel.data()[kidx]).abs() < 1e-2,
                    "dkernel[{kidx}] analytic {} vs numeric {num} ({padding:?})",
                    dkernel.data()[kidx]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let input = Tensor::zeros([1, 4, 4, 3]);
        let kernel = Tensor::zeros([3, 3, 2, 8]);
        conv2d_forward(&input, &kernel, Padding::Valid);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn valid_too_small_panics() {
        let input = Tensor::zeros([1, 2, 2, 1]);
        let kernel = Tensor::zeros([3, 3, 1, 1]);
        conv2d_forward(&input, &kernel, Padding::Valid);
    }
}
