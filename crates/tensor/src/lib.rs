//! Minimal CPU tensor library for the selective-weight-transfer reproduction.
//!
//! The paper trains Keras/TensorFlow models on GPUs; this crate is the
//! from-scratch substitute: dense row-major `f32` tensors with exactly the
//! kernels the four application search spaces need —
//!
//! * parallel blocked [`matmul`](matmul::matmul) (rayon over output rows),
//! * im2col [`conv2d`](conv2d) / [`conv1d`](conv1d) forward *and* backward,
//! * max-pooling with argmax-based backward,
//! * row-wise softmax and elementwise activations,
//! * a seeded, splittable [`Rng`](rng::Rng) so every experiment is
//!   reproducible from a single `u64` seed.
//!
//! Everything is safe Rust; hot loops are written over slices so bounds
//! checks vectorise away (see the Rust Performance Book guidance this repo
//! follows).

pub mod conv1d;
pub mod conv2d;
pub mod matmul;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use conv1d::{conv1d_backward, conv1d_forward};
pub use conv2d::{conv2d_backward, conv2d_forward, Padding};
pub use matmul::{matmul, matmul_at, matmul_bt};
pub use ops::{
    relu, relu_grad_from_output, sigmoid, sigmoid_grad_from_output, softmax_rows, tanh_act,
    tanh_grad_from_output,
};
pub use pool::{maxpool1d_backward, maxpool1d_forward, maxpool2d_backward, maxpool2d_forward};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;
