//! Minimal CPU tensor library for the selective-weight-transfer reproduction.
//!
//! The paper trains Keras/TensorFlow models on GPUs; this crate is the
//! from-scratch substitute: dense row-major `f32` tensors with exactly the
//! kernels the four application search spaces need —
//!
//! * a cache-blocked, register-tiled, packed [`matmul`](matmul::matmul)
//!   (BLIS-style; see the module docs) with transpose variants for the
//!   backward passes,
//! * im2col [`conv2d`] / [`conv1d`] forward *and* backward,
//!   batch-parallel,
//! * max-pooling with argmax-based backward,
//! * row-wise softmax and elementwise activations,
//! * a reusable scratch arena ([`Workspace`]) so the
//!   training hot path is allocation-free at steady state,
//! * scoped-thread data-parallel helpers ([`parallel`]) with one
//!   process-wide thread budget,
//! * a seeded, splittable [`Rng`] so every experiment is
//!   reproducible from a single `u64` seed.
//!
//! The crate has zero external dependencies. Everything is safe Rust except
//! the GEMM micro-kernels behind the runtime dispatch table in [`mod@matmul`]:
//! an explicit AVX2+FMA `std::arch` kernel (selected once per process via
//! `is_x86_feature_detected!`, with the portable scalar kernel as fallback)
//! is the one place `unsafe` buys real throughput. Hot loops elsewhere are
//! written over slices and fixed-size tiles so bounds checks vectorise away.

pub mod conv1d;
pub mod conv2d;
pub mod matmul;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use conv1d::{conv1d_backward, conv1d_backward_ws, conv1d_forward, conv1d_forward_ws};
pub use conv2d::{conv2d_backward, conv2d_backward_ws, conv2d_forward, conv2d_forward_ws, Padding};
pub use matmul::{
    force_naive_gemm, force_scalar_kernel, gemm_kernel_name, matmul, matmul_at, matmul_at_ws,
    matmul_bt, matmul_bt_ws, matmul_naive, matmul_ws,
};
pub use ops::{
    relu, relu_grad_from_output, sigmoid, sigmoid_grad_from_output, softmax_rows, tanh_act,
    tanh_grad_from_output,
};
pub use pool::{maxpool1d_backward, maxpool1d_forward, maxpool2d_backward, maxpool2d_forward};
pub use rng::Rng;
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::{with_thread_workspace, Workspace};
