//! Max pooling (2-D NHWC and 1-D NWC) with argmax-routed backward.
//!
//! The paper's Pooling variable nodes choose identity or pooling layers with
//! sizes/strides from 2 to 5. The forward pass records the flat index of each
//! window's maximum so the backward pass routes the gradient to exactly that
//! element (ties resolve to the first maximum, as in TensorFlow).

use crate::tensor::Tensor;

fn pooled_size(s: usize, k: usize, stride: usize) -> usize {
    assert!(stride > 0, "pool stride must be positive");
    assert!(k > 0, "pool size must be positive");
    assert!(s >= k, "pool: input {s} smaller than window {k}");
    (s - k) / stride + 1
}

/// 2-D max pool over `(n, h, w, c)` with a square `k`×`k` window.
///
/// Returns `(output, argmax)` where `argmax[i]` is the flat input index that
/// produced `output.data()[i]`.
pub fn maxpool2d_forward(input: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(input.shape().rank(), 4, "maxpool2d input must be NHWC");
    let (n, h, w, c) =
        (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2), input.shape().dim(3));
    let oh = pooled_size(h, k, stride);
    let ow = pooled_size(w, k, stride);
    let mut out = vec![f32::NEG_INFINITY; n * oh * ow * c];
    let mut arg = vec![0u32; n * oh * ow * c];
    let src = input.data();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let base = ((ni * oh + oy) * ow + ox) * c;
                for ky in 0..k {
                    let iy = oy * stride + ky;
                    for kx in 0..k {
                        let ix = ox * stride + kx;
                        let s = ((ni * h + iy) * w + ix) * c;
                        for ci in 0..c {
                            let v = src[s + ci];
                            if v > out[base + ci] {
                                out[base + ci] = v;
                                arg[base + ci] = (s + ci) as u32;
                            }
                        }
                    }
                }
            }
        }
    }
    (Tensor::from_vec([n, oh, ow, c], out), arg)
}

/// Backward 2-D max pool: scatter `dout` to the recorded argmax positions.
pub fn maxpool2d_backward(input_shape: &[usize], dout: &Tensor, argmax: &[u32]) -> Tensor {
    assert_eq!(dout.numel(), argmax.len(), "dout/argmax length mismatch");
    let mut dinput = Tensor::zeros(input_shape.to_vec());
    let dst = dinput.data_mut();
    for (&a, &g) in argmax.iter().zip(dout.data()) {
        dst[a as usize] += g;
    }
    dinput
}

/// 1-D max pool over `(n, w, c)`.
pub fn maxpool1d_forward(input: &Tensor, k: usize, stride: usize) -> (Tensor, Vec<u32>) {
    assert_eq!(input.shape().rank(), 3, "maxpool1d input must be (n, w, c)");
    let (n, w, c) = (input.shape().dim(0), input.shape().dim(1), input.shape().dim(2));
    let ow = pooled_size(w, k, stride);
    let mut out = vec![f32::NEG_INFINITY; n * ow * c];
    let mut arg = vec![0u32; n * ow * c];
    let src = input.data();
    for ni in 0..n {
        for ox in 0..ow {
            let base = (ni * ow + ox) * c;
            for kx in 0..k {
                let ix = ox * stride + kx;
                let s = (ni * w + ix) * c;
                for ci in 0..c {
                    let v = src[s + ci];
                    if v > out[base + ci] {
                        out[base + ci] = v;
                        arg[base + ci] = (s + ci) as u32;
                    }
                }
            }
        }
    }
    (Tensor::from_vec([n, ow, c], out), arg)
}

/// Backward 1-D max pool.
pub fn maxpool1d_backward(input_shape: &[usize], dout: &Tensor, argmax: &[u32]) -> Tensor {
    maxpool2d_backward(input_shape, dout, argmax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pool2d_known_values() {
        // 1 sample, 4x4, 1 channel.
        #[rustfmt::skip]
        let input = Tensor::from_vec([1, 4, 4, 1], vec![
            1., 2., 3., 4.,
            5., 6., 7., 8.,
            9., 10., 11., 12.,
            13., 14., 15., 16.,
        ]);
        let (out, _) = maxpool2d_forward(&input, 2, 2);
        assert_eq!(out.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(out.data(), &[6., 8., 14., 16.]);
    }

    #[test]
    fn pool2d_overlapping_stride() {
        #[rustfmt::skip]
        let input = Tensor::from_vec([1, 3, 3, 1], vec![
            1., 2., 3.,
            4., 5., 6.,
            7., 8., 9.,
        ]);
        let (out, _) = maxpool2d_forward(&input, 2, 1);
        assert_eq!(out.shape().dims(), &[1, 2, 2, 1]);
        assert_eq!(out.data(), &[5., 6., 8., 9.]);
    }

    #[test]
    fn pool2d_backward_routes_to_argmax() {
        #[rustfmt::skip]
        let input = Tensor::from_vec([1, 2, 2, 1], vec![
            1., 9.,
            3., 4.,
        ]);
        let (out, arg) = maxpool2d_forward(&input, 2, 2);
        assert_eq!(out.data(), &[9.]);
        let dout = Tensor::from_vec([1, 1, 1, 1], vec![5.0]);
        let dinput = maxpool2d_backward(&[1, 2, 2, 1], &dout, &arg);
        assert_eq!(dinput.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn pool2d_gradient_check() {
        let mut rng = Rng::seed(1);
        let input = Tensor::rand_normal([2, 5, 5, 3], 0.0, 1.0, &mut rng);
        let (out, arg) = maxpool2d_forward(&input, 2, 2);
        let dout = Tensor::ones(out.shape().dims().to_vec());
        let dinput = maxpool2d_backward(input.shape().dims(), &dout, &arg);
        let eps = 1e-3f32;
        for idx in (0..input.numel()).step_by(7) {
            let mut plus = input.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = input.clone();
            minus.data_mut()[idx] -= eps;
            let num = (maxpool2d_forward(&plus, 2, 2).0.sum()
                - maxpool2d_forward(&minus, 2, 2).0.sum())
                / (2.0 * eps);
            assert!(
                (num - dinput.data()[idx]).abs() < 1e-2,
                "dinput[{idx}] analytic {} numeric {num}",
                dinput.data()[idx]
            );
        }
    }

    #[test]
    fn pool1d_known_values() {
        let input = Tensor::from_vec([1, 6, 1], vec![3., 1., 4., 1., 5., 9.]);
        let (out, _) = maxpool1d_forward(&input, 2, 2);
        assert_eq!(out.data(), &[3., 4., 9.]);
        let (out3, _) = maxpool1d_forward(&input, 3, 3);
        assert_eq!(out3.data(), &[4., 9.]);
    }

    #[test]
    fn pool1d_multi_channel_independent() {
        // Two channels pooled independently.
        let input = Tensor::from_vec([1, 2, 2], vec![1., 8., 5., 2.]);
        let (out, arg) = maxpool1d_forward(&input, 2, 1);
        assert_eq!(out.data(), &[5., 8.]);
        let dout = Tensor::from_vec([1, 1, 2], vec![1.0, 1.0]);
        let dinput = maxpool1d_backward(&[1, 2, 2], &dout, &arg);
        assert_eq!(dinput.data(), &[0., 1., 1., 0.]);
    }

    #[test]
    #[should_panic(expected = "smaller than window")]
    fn window_larger_than_input_panics() {
        maxpool1d_forward(&Tensor::zeros([1, 2, 1]), 3, 1);
    }
}
