#!/usr/bin/env bash
# CI gate: formatting, lints, build and the full test suite.
#
# Usage: scripts/check.sh
# Runs everything offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build (all targets)"
cargo build --workspace --all-targets

echo "==> cargo test"
cargo test --workspace

echo "OK"
