#!/usr/bin/env bash
# CI gate: formatting, lints, build and the full test suite.
#
# Usage: scripts/check.sh
# Runs everything offline (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build (all targets)"
cargo build --workspace --all-targets

echo "==> cargo test"
cargo test --workspace

echo "==> cargo test (forced scalar micro-kernel: the portable fallback must stay correct)"
SWT_FORCE_SCALAR_KERNEL=1 cargo test --workspace --quiet

echo "==> cargo doc (no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> print gate (library crates log via swt-obs, not stdout/stderr)"
# Binaries own stdout (figures, CSV, bench tables); library code must go
# through the swt-obs logger. Allowlisted: the logger's own stderr sink,
# the bench harness console table, and the experiments table/CSV renderer
# that the figure binaries print through.
violations=$(grep -rn 'println!\|eprintln!' crates/*/src --include='*.rs' \
  | grep -v '/src/bin/' \
  | grep -v '^crates/obs/src/log.rs:' \
  | grep -v '^crates/bench/src/lib.rs:' \
  | grep -v '^crates/experiments/src/lib.rs:' \
  || true)
if [ -n "$violations" ]; then
  echo "library code printing outside swt-obs:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "==> bench_obs smoke (disabled-instrumentation overhead < 2%)"
cargo run --release --quiet -p swt-bench --bin bench_obs -- --smoke

echo "==> WTC1 -> WTC2 compatibility (legacy checkpoints stay readable)"
cargo test --release --quiet -p swt-checkpoint wtc1

echo "==> bench_ckpt smoke (transfer-path read >= 3x WTC1 full decode; NAS A/B identical)"
cargo run --release --quiet -p swt-bench --bin bench_ckpt -- --smoke

echo "==> bench_batch smoke (batched window reproduces the unbatched canonical trace)"
batch_json=$(mktemp)
cargo run --release --quiet -p swt-bench --bin bench_batch -- --smoke "$batch_json"
rm -f "$batch_json"

echo "==> bench_fidelity smoke (multi-fidelity pipeline engages: candidates pruned + prefiltered)"
fidelity_json=$(mktemp)
cargo run --release --quiet -p swt-bench --bin bench_fidelity -- --smoke "$fidelity_json"
rm -f "$fidelity_json"

echo "==> GEMM alloc gate (matmul.rs hot paths draw from the Workspace, not the heap)"
# The blocked driver's pack buffers must come from the caller's Workspace;
# a `vec!`/`Vec::new` in matmul.rs is a hot-loop allocation unless the line
# is annotated `alloc-gate: allow` (cold oracles like the naive reference).
# The `#[cfg(test)]` module is exempt — tests may allocate freely.
allocs=$(awk '/#\[cfg\(test\)\]/ { exit }
  /vec!|Vec::new/ && !/alloc-gate: allow/ { print FILENAME ":" FNR ": " $0 }' \
  crates/tensor/src/matmul.rs)
if [ -n "$allocs" ]; then
  echo "heap allocation in crates/tensor/src/matmul.rs hot path (annotate cold paths with 'alloc-gate: allow'):" >&2
  echo "$allocs" >&2
  exit 1
fi

echo "==> no-panic gate (networked code must degrade, never unwrap)"
panics=$(grep -rnE '\.unwrap\(\)|\.expect\(|panic!\(' \
  crates/dist/src crates/obs/src/serve.rs crates/wire/src crates/ckpt-server/src \
  --include='*.rs' || true)
if [ -n "$panics" ]; then
  echo "panicking call in networked code (swt-dist, swt-wire, swt-ckpt-server, live server) — degrade with errors, never panic:" >&2
  echo "$panics" >&2
  exit 1
fi

echo "==> bench_dist smoke (coordinator + 2 workers, one SIGKILLed; A/B identical to in-process)"
cargo build --release --quiet -p swt   # worker binary for the coordinator to spawn
cargo run --release --quiet -p swt-bench --bin bench_dist -- --smoke

echo "==> autoscale policy props (bounds, hysteresis, monotonicity, log determinism)"
cargo test --release --quiet -p swt-dist --test policy_props

echo "==> bench_autoscale smoke (autoscaled A/B identical; replayed policy closes the makespan gap)"
cargo run --release --quiet -p swt-bench --bin bench_autoscale -- --smoke

echo "==> wire fuzz (every frame type under truncation/bit-flips/hostile prefixes)"
cargo test --release --quiet -p swt-dist --test fuzz_decode

echo "==> store wire fuzz (store frames: truncation, hostile name tables, oversized ranges)"
cargo test --release --quiet -p swt-ckpt-server --test fuzz_decode

echo "==> bench_ckptsrv smoke (selective read <= 5% of full bytes on the wire, >= 3x faster)"
cargo run --release --quiet -p swt-bench --bin bench_ckptsrv -- --smoke

echo "==> elastic smoke (late join must not change the canonical trace)"
elastic_dir=$(mktemp -d)
live_dir=$(mktemp -d)
trap 'rm -rf "$elastic_dir" "$live_dir"' EXIT
./target/release/swt dist-run --app uno --scheme lcs --candidates 8 \
  --workers 2 --store "$elastic_dir/fixed_store" \
  --canonical-trace "$elastic_dir/fixed.csv" >/dev/null
./target/release/swt dist-run --app uno --scheme lcs --candidates 8 \
  --workers 2 --join-after 2 --max-workers 3 \
  --store "$elastic_dir/elastic_store" \
  --canonical-trace "$elastic_dir/elastic.csv" >/dev/null
if ! cmp -s "$elastic_dir/fixed.csv" "$elastic_dir/elastic.csv"; then
  echo "elastic smoke: canonical trace changed when a worker joined mid-run" >&2
  diff "$elastic_dir/fixed.csv" "$elastic_dir/elastic.csv" >&2 || true
  exit 1
fi

echo "==> autoscale smoke (policy-driven pool must not change the canonical trace)"
./target/release/swt dist-run --app uno --scheme lcs --candidates 8 \
  --workers 2 --initial-workers 1 --autoscale 1:2 \
  --store "$elastic_dir/autoscale_store" \
  --canonical-trace "$elastic_dir/autoscale.csv" >/dev/null
if ! cmp -s "$elastic_dir/fixed.csv" "$elastic_dir/autoscale.csv"; then
  echo "autoscale smoke: canonical trace changed when the policy resized the pool" >&2
  diff "$elastic_dir/fixed.csv" "$elastic_dir/autoscale.csv" >&2 || true
  exit 1
fi

echo "==> remote store smoke (dist-run over swt-ckpt-server reproduces the DirStore trace)"
ckpt_dir=$(mktemp -d)
# --max-seconds is a backstop so a failed smoke cannot leave the server behind.
./target/release/swt ckpt-server --bind 127.0.0.1:0 --spill "$ckpt_dir/spill" \
  --max-seconds 120 > "$ckpt_dir/out.txt" &
ckpt_pid=$!
srv_addr=""
for _ in $(seq 1 100); do
  srv_addr=$(sed -n 's/^ckpt-server listening on \([^ ]*\).*/\1/p' "$ckpt_dir/out.txt")
  [ -n "$srv_addr" ] && break
  sleep 0.1
done
if [ -z "$srv_addr" ]; then
  echo "remote store smoke: the server never printed its address" >&2
  kill "$ckpt_pid" 2>/dev/null || true
  exit 1
fi
./target/release/swt dist-run --app uno --scheme lcs --candidates 8 \
  --workers 2 --store "tcp://$srv_addr" \
  --canonical-trace "$ckpt_dir/remote.csv" >/dev/null
kill "$ckpt_pid" 2>/dev/null || true
if ! cmp -s "$elastic_dir/fixed.csv" "$ckpt_dir/remote.csv"; then
  echo "remote store smoke: canonical trace changed when checkpoints moved through the server" >&2
  diff "$elastic_dir/fixed.csv" "$ckpt_dir/remote.csv" >&2 || true
  exit 1
fi
rm -rf "$ckpt_dir"

echo "==> fidelity off-switch A/B (fidelity-off traces bit-identical to the pre-fidelity golden)"
./target/release/swt run --app uno --scheme lcs --candidates 8 --workers 2 \
  --canonical-trace "$elastic_dir/fidelity_off_local.csv" >/dev/null
if ! cmp -s "$elastic_dir/fidelity_off_local.csv" tests/golden/canonical_uno_lcs_c8_w2.csv; then
  echo "fidelity off-switch: in-process canonical trace drifted from the pre-fidelity golden" >&2
  diff tests/golden/canonical_uno_lcs_c8_w2.csv "$elastic_dir/fidelity_off_local.csv" >&2 || true
  exit 1
fi
# The elastic smoke above ran the identical config through the dist backend;
# its trace must sit on the same golden bytes.
if ! cmp -s "$elastic_dir/fixed.csv" tests/golden/canonical_uno_lcs_c8_w2.csv; then
  echo "fidelity off-switch: dist canonical trace drifted from the pre-fidelity golden" >&2
  diff tests/golden/canonical_uno_lcs_c8_w2.csv "$elastic_dir/fixed.csv" >&2 || true
  exit 1
fi

echo "==> live endpoint smoke (/status answers mid-run; /metrics counters match report.json)"
# The multi-fidelity flags both lengthen the run enough for the poller to
# catch it mid-flight (a plain 12-candidate quick run now finishes in
# ~100 ms) and exercise the fidelity stop counters over the wire.
./target/release/swt dist-run --app uno --scheme lcs --candidates 16 \
  --epochs 4 --rungs 2,4 --eta 2 --prefilter 0.25 \
  --workers 2 --store "$live_dir/store" --serve 127.0.0.1:0 \
  --report "$live_dir/report.json" > "$live_dir/out.txt" &
live_pid=$!
# The run picks a free port and prints the live URL; wait for it.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's|^live: http://\([^/]*\)/status.*|\1|p' "$live_dir/out.txt")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "live smoke: the run never printed its live URL" >&2
  kill "$live_pid" 2>/dev/null || true
  exit 1
fi
# Poll /status until every connected worker has streamed telemetry
# (workers are listed, and none is still at frames:0), grabbing /metrics
# in the same breath so both captures are genuinely mid-run.
ok=""
metrics=""
for _ in $(seq 1 400); do
  status=$(./target/release/swt dist-top --addr "$addr" --fetch /status 2>/dev/null || true)
  if echo "$status" | grep -q '"frames":' && ! echo "$status" | grep -q '"frames":0[,}]'; then
    metrics=$(./target/release/swt dist-top --addr "$addr" --fetch /metrics 2>/dev/null || true)
    [ -n "$metrics" ] && ok=1 && break
  fi
  sleep 0.05
done
wait "$live_pid"
if [ -z "$ok" ]; then
  echo "live smoke: workers never reported over /status (or /metrics never answered)" >&2
  exit 1
fi
if ! echo "$status" | grep -q '"stopped"'; then
  echo "live smoke: /status workers are missing the stop-reason count object" >&2
  exit 1
fi
# Every counter family the live endpoint exported must exist in the
# final merged report -- the stream may be stale, never invented.
missing=""
for name in $(echo "$metrics" | sed -n 's/^swt_counter{name="\([^"]*\)".*/\1/p' | sort -u); do
  grep -q "\"$name\"" "$live_dir/report.json" || missing="$missing $name"
done
if [ -n "$missing" ]; then
  echo "live smoke: /metrics exported counters absent from report.json:$missing" >&2
  exit 1
fi

echo "OK"
